//! Constrained circuit copies and model-harvest helpers for
//! SAT-guided discriminating-test generation.
//!
//! The testgen queries in `gatediag_core::testgen` stack several copies
//! of the same circuit into one solver: the golden reference, the faulty
//! circuit as manufactured, a copy with a candidate's gates *freed*
//! (paper Definition 3: a correction may drive any value there), and a
//! family of copies with those gates *pinned* to concrete constants
//! (universal expansion of "no free values rectify this output"). All
//! copies share their primary inputs, so a model is a single input
//! vector; the harvest helpers extract it either as a plain `Vec<bool>`
//! or directly into `PackedSim`-layout pattern words.

use crate::sink::ClauseSink;
use crate::tseitin::{encode_gate, CircuitVars};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{Lit, Solver, Var};

/// Encodes a circuit copy with the gates in `freed` left unconstrained.
///
/// Freed gates still get variables (so fanouts reference them), but their
/// defining clauses are dropped: the solver may assign them any value,
/// which is exactly the paper's Definition 3 notion of a correction at
/// those locations. Freeing a primary input is a no-op (inputs never have
/// defining clauses).
pub fn encode_freed_copy<S: ClauseSink>(
    sink: &mut S,
    circuit: &Circuit,
    freed: &[GateId],
) -> CircuitVars {
    let vars: Vec<Var> = (0..circuit.len()).map(|_| sink.new_var()).collect();
    let map = CircuitVars::from_vars(vars);
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input || freed.contains(&id) {
            continue;
        }
        let fanins: Vec<Lit> = gate.fanins().iter().map(|&f| map.lit(f, true)).collect();
        encode_gate(sink, gate.kind(), map.var(id), &fanins, None);
    }
    map
}

/// Encodes a circuit copy with each gate in `pinned` forced to a constant.
///
/// Pinned gates get a unit clause instead of their defining clauses — one
/// hardwired point of the universal expansion over a candidate's free
/// values.
///
/// # Panics
///
/// Panics if a pinned gate is a primary input: inputs are shared across
/// copies via [`tie_inputs`], so pinning one would constrain every copy.
pub fn encode_pinned_copy<S: ClauseSink>(
    sink: &mut S,
    circuit: &Circuit,
    pinned: &[(GateId, bool)],
) -> CircuitVars {
    let vars: Vec<Var> = (0..circuit.len()).map(|_| sink.new_var()).collect();
    let map = CircuitVars::from_vars(vars);
    for &(id, value) in pinned {
        assert_ne!(
            circuit.gate(id).kind(),
            GateKind::Input,
            "cannot pin a primary input"
        );
        sink.add_clause(&[map.lit(id, value)]);
    }
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input || pinned.iter().any(|&(p, _)| p == id) {
            continue;
        }
        let fanins: Vec<Lit> = gate.fanins().iter().map(|&f| map.lit(f, true)).collect();
        encode_gate(sink, gate.kind(), map.var(id), &fanins, None);
    }
    map
}

/// Ties the primary inputs of two encoded copies together positionally.
///
/// `a` and `b` pair each copy's variable map with its circuit's
/// `inputs()` list; the two lists must have equal length (the copies may
/// come from different `Circuit` objects whose gate ids differ).
pub fn tie_inputs(solver: &mut Solver, a: (&CircuitVars, &[GateId]), b: (&CircuitVars, &[GateId])) {
    assert_eq!(a.1.len(), b.1.len(), "input count mismatch");
    for (&ai, &bi) in a.1.iter().zip(b.1) {
        let x = a.0.lit(ai, true);
        let y = b.0.lit(bi, true);
        solver.add_clause(&[!x, y]);
        solver.add_clause(&[x, !y]);
    }
}

/// Reads the model's input vector (in `inputs` order) after a SAT outcome.
///
/// # Panics
///
/// Panics if the solver holds no model.
pub fn harvest_input_vector(solver: &Solver, vars: &CircuitVars, inputs: &[GateId]) -> Vec<bool> {
    inputs
        .iter()
        .map(|&pi| {
            solver
                .model_value(vars.lit(pi, true))
                .expect("model available after SAT")
        })
        .collect()
}

/// Harvests the model's input vector directly into `PackedSim`-layout
/// pattern words: bit `lane % 64` of word `words[i * words_per_input +
/// lane / 64]` receives input `i`'s value (the rIC3 `rt_dfs_simulate`
/// harvest-into-bitvec idiom).
///
/// # Panics
///
/// Panics if the solver holds no model or `lane` exceeds the buffer.
pub fn harvest_input_lane(
    solver: &Solver,
    vars: &CircuitVars,
    inputs: &[GateId],
    words: &mut [u64],
    words_per_input: usize,
    lane: usize,
) {
    assert!(lane / 64 < words_per_input, "lane out of range");
    let bit = 1u64 << (lane % 64);
    for (i, &pi) in inputs.iter().enumerate() {
        let value = solver
            .model_value(vars.lit(pi, true))
            .expect("model available after SAT");
        let word = &mut words[i * words_per_input + lane / 64];
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }
}

/// Blocks `vector` (over `inputs`, positionally) so later solves must
/// produce a different input assignment.
pub fn block_input_vector(
    solver: &mut Solver,
    vars: &CircuitVars,
    inputs: &[GateId],
    vector: &[bool],
) {
    let clause: Vec<Lit> = inputs
        .iter()
        .zip(vector)
        .map(|(&pi, &v)| vars.lit(pi, !v))
        .collect();
    solver.add_clause(&clause);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tseitin::encode_circuit;
    use gatediag_netlist::c17;
    use gatediag_sat::{SolveResult, Solver};
    use gatediag_sim::simulate;

    #[test]
    fn freed_gate_may_take_any_value() {
        let c = c17();
        // Free the first non-input gate; the solver may then set it to a
        // value the gate function would forbid.
        let freed = c
            .iter()
            .find(|(_, g)| g.kind() != GateKind::Input)
            .map(|(id, _)| id)
            .unwrap();
        let vector = vec![true; c.inputs().len()];
        let honest = simulate(&c, &vector)[freed.index()];
        let mut solver = Solver::new();
        let vars = encode_freed_copy(&mut solver, &c, &[freed]);
        for (&pi, &v) in c.inputs().iter().zip(&vector) {
            solver.add_clause(&[vars.lit(pi, v)]);
        }
        assert_eq!(
            solver.solve(&[vars.lit(freed, !honest)]),
            SolveResult::Sat,
            "freed gate should accept the dishonest value"
        );
    }

    #[test]
    fn pinned_gate_holds_its_constant_and_propagates() {
        let c = c17();
        let pinned = c
            .iter()
            .find(|(_, g)| g.kind() != GateKind::Input)
            .map(|(id, _)| id)
            .unwrap();
        for value in [false, true] {
            let mut solver = Solver::new();
            let vars = encode_pinned_copy(&mut solver, &c, &[(pinned, value)]);
            assert_eq!(
                solver.solve(&[vars.lit(pinned, !value)]),
                SolveResult::Unsat
            );
            assert_eq!(solver.solve(&[vars.lit(pinned, value)]), SolveResult::Sat);
        }
    }

    #[test]
    fn tied_copies_agree_on_inputs_and_harvest_matches() {
        let c = c17();
        let mut solver = Solver::new();
        let a = encode_circuit(&mut solver, &c);
        let b = encode_circuit(&mut solver, &c);
        tie_inputs(&mut solver, (&a, c.inputs()), (&b, c.inputs()));
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        let va = harvest_input_vector(&solver, &a, c.inputs());
        let vb = harvest_input_vector(&solver, &b, c.inputs());
        assert_eq!(va, vb);

        // The packed harvest of the same model round-trips through
        // unpacking the lane.
        let words_per_input = 2;
        let mut words = vec![0u64; c.inputs().len() * words_per_input];
        for lane in [0usize, 63, 64, 127] {
            harvest_input_lane(&solver, &a, c.inputs(), &mut words, words_per_input, lane);
            let unpacked: Vec<bool> = (0..c.inputs().len())
                .map(|i| words[i * words_per_input + lane / 64] >> (lane % 64) & 1 == 1)
                .collect();
            assert_eq!(unpacked, va, "lane {lane}");
        }
    }

    #[test]
    fn blocking_forbids_the_vector() {
        let c = c17();
        let mut solver = Solver::new();
        let vars = encode_circuit(&mut solver, &c);
        let mut seen = std::collections::HashSet::new();
        // 5 inputs: exactly 32 distinct vectors exist, then UNSAT.
        for _ in 0..32 {
            assert_eq!(solver.solve(&[]), SolveResult::Sat);
            let v = harvest_input_vector(&solver, &vars, c.inputs());
            assert!(seen.insert(v.clone()), "blocked vector reappeared");
            block_input_vector(&mut solver, &vars, c.inputs(), &v);
        }
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "cannot pin a primary input")]
    fn pinning_an_input_is_rejected() {
        let c = c17();
        let pi = c.inputs()[0];
        let mut solver = Solver::new();
        let _ = encode_pinned_copy(&mut solver, &c, &[(pi, true)]);
    }
}
