//! Correction-multiplexer instrumentation (Fig. 2 of the paper).
//!
//! SAT-based diagnosis inserts a multiplexer at every candidate gate: when
//! the shared select line `s_g` is 0 the gate drives its normal function;
//! when `s_g` is 1 the gate's value is freed (an arbitrary per-test value,
//! modelling replacement by an arbitrary Boolean function).
//!
//! Two encodings are provided:
//!
//! * [`MuxEncoding::Inline`] — each defining clause of the gate is guarded
//!   with the select literal, freeing the output when selected. No extra
//!   variables; this is the efficient modern formulation.
//! * [`MuxEncoding::ExplicitMux`] — the paper-faithful construction: a
//!   fresh variable `f` for the original function, a fresh free variable
//!   `c` for the injected value, and mux clauses `y = s ? c : f`. The
//!   `force_c_zero` flag reproduces the advanced-approach optimisation
//!   (Sec. 2.3) that pins `c` to 0 while the mux is off, saving up to |I|
//!   decisions.

use crate::sink::ClauseSink;
use crate::tseitin::{encode_gate, CircuitVars};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{Lit, Var};

/// Choice of multiplexer encoding (see module docs).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MuxEncoding {
    /// Guard each gate clause with the select literal (no extra variables).
    #[default]
    Inline,
    /// Explicit `y = s ? c : f` construction from the paper's Fig. 2.
    ExplicitMux {
        /// Add `s ∨ ¬c` clauses pinning the injected value to 0 while the
        /// mux is off (the advanced-approach search-space reduction).
        force_c_zero: bool,
    },
}

/// Shared select lines over the instrumented gate sites.
///
/// One select variable per site, shared by every encoded circuit copy, so a
/// gate is corrected for all tests or none (the key BSAT property).
#[derive(Clone, Debug)]
pub struct Instrumentation {
    sites: Vec<GateId>,
    select_of: Vec<Option<Var>>,
}

impl Instrumentation {
    /// Allocates one select variable per site.
    ///
    /// # Panics
    ///
    /// Panics if a site is a source gate (inputs/constants cannot be
    /// corrected) or listed twice.
    pub fn new<S: ClauseSink>(sink: &mut S, circuit: &Circuit, sites: &[GateId]) -> Self {
        let mut select_of = vec![None; circuit.len()];
        for &site in sites {
            assert!(
                circuit.gate(site).kind() != GateKind::Input,
                "cannot instrument primary input {site}"
            );
            assert!(
                select_of[site.index()].is_none(),
                "gate {site} instrumented twice"
            );
            select_of[site.index()] = Some(sink.new_var());
        }
        Instrumentation {
            sites: sites.to_vec(),
            select_of,
        }
    }

    /// The instrumented sites, in construction order.
    pub fn sites(&self) -> &[GateId] {
        &self.sites
    }

    /// The select variable of `gate`, if instrumented.
    pub fn select(&self, gate: GateId) -> Option<Var> {
        self.select_of[gate.index()]
    }

    /// All select variables, parallel to [`Instrumentation::sites`].
    pub fn select_vars(&self) -> Vec<Var> {
        self.sites
            .iter()
            .map(|&g| self.select_of[g.index()].expect("site has a select var"))
            .collect()
    }
}

/// One instrumented circuit copy.
#[derive(Clone, Debug)]
pub struct InstrumentedCopy {
    /// Gate-value variables of this copy.
    pub vars: CircuitVars,
    /// The per-copy injected-value variables (`ExplicitMux` encoding only),
    /// dense by gate id.
    pub injected: Vec<Option<Var>>,
}

/// Encodes one circuit copy with correction muxes at the instrumented
/// sites. Select lines come from `inst` and are shared across copies.
///
/// # Examples
///
/// ```
/// use gatediag_cnf::{encode_instrumented_copy, Instrumentation, MuxEncoding};
/// use gatediag_sat::Solver;
///
/// let c = gatediag_netlist::c17();
/// let site = c.find("G16").unwrap();
/// let mut solver = Solver::new();
/// let inst = Instrumentation::new(&mut solver, &c, &[site]);
/// let copy = encode_instrumented_copy(&mut solver, &c, &inst, MuxEncoding::Inline);
/// assert_eq!(copy.vars.all().len(), c.len());
/// ```
pub fn encode_instrumented_copy<S: ClauseSink>(
    sink: &mut S,
    circuit: &Circuit,
    inst: &Instrumentation,
    encoding: MuxEncoding,
) -> InstrumentedCopy {
    let vars: Vec<Var> = (0..circuit.len()).map(|_| sink.new_var()).collect();
    let map = CircuitVars::from_vars(vars);
    let mut injected = vec![None; circuit.len()];
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<Lit> = gate.fanins().iter().map(|&f| map.lit(f, true)).collect();
        let y = map.var(id);
        match (inst.select(id), encoding) {
            (None, _) => encode_gate(sink, gate.kind(), y, &fanins, None),
            (Some(s), MuxEncoding::Inline) => {
                encode_gate(sink, gate.kind(), y, &fanins, Some(s.positive()));
            }
            (Some(s), MuxEncoding::ExplicitMux { force_c_zero }) => {
                let f = sink.new_var();
                encode_gate(sink, gate.kind(), f, &fanins, None);
                let c = sink.new_var();
                injected[id.index()] = Some(c);
                let (sp, sn) = (s.positive(), s.negative());
                // y = s ? c : f
                sink.add_clause(&[sn, c.negative(), y.positive()]);
                sink.add_clause(&[sn, c.positive(), y.negative()]);
                sink.add_clause(&[sp, f.negative(), y.positive()]);
                sink.add_clause(&[sp, f.positive(), y.negative()]);
                if force_c_zero {
                    sink.add_clause(&[sp, c.negative()]);
                }
            }
        }
    }
    InstrumentedCopy {
        vars: map,
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::c17;
    use gatediag_sat::{SolveResult, Solver};
    use gatediag_sim::simulate;

    fn all_encodings() -> [MuxEncoding; 3] {
        [
            MuxEncoding::Inline,
            MuxEncoding::ExplicitMux {
                force_c_zero: false,
            },
            MuxEncoding::ExplicitMux { force_c_zero: true },
        ]
    }

    #[test]
    fn unselected_muxes_behave_like_plain_circuit() {
        let c = c17();
        for encoding in all_encodings() {
            let sites: Vec<_> = c
                .iter()
                .filter(|(_, g)| !g.kind().is_source())
                .map(|(id, _)| id)
                .collect();
            let mut solver = Solver::new();
            let inst = Instrumentation::new(&mut solver, &c, &sites);
            let copy = encode_instrumented_copy(&mut solver, &c, &inst, encoding);
            // All selects off.
            for v in inst.select_vars() {
                solver.add_clause(&[v.negative()]);
            }
            for pattern in 0..32u32 {
                let vector: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
                let assumptions: Vec<_> = c
                    .inputs()
                    .iter()
                    .zip(&vector)
                    .map(|(&pi, &v)| copy.vars.lit(pi, v))
                    .collect();
                assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
                let expected = simulate(&c, &vector);
                for (id, _) in c.iter() {
                    assert_eq!(
                        solver.model_value(copy.vars.lit(id, true)),
                        Some(expected[id.index()]),
                        "{encoding:?} gate {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn selected_mux_frees_the_gate() {
        let c = c17();
        let site = c.find("G16").unwrap();
        let out = c.find("G22").unwrap();
        for encoding in all_encodings() {
            let mut solver = Solver::new();
            let inst = Instrumentation::new(&mut solver, &c, &[site]);
            let copy = encode_instrumented_copy(&mut solver, &c, &inst, encoding);
            let s = inst.select(site).unwrap();
            // Fix one input vector; with the mux on, both values of the
            // freed gate (and of the output) must be reachable. G1=0 makes
            // G10 = NAND(G1,G3) = 1, so G22 = NAND(G10,G16) = !G16 is
            // sensitive to the freed gate.
            let vector = [false, true, true, true, true];
            let mut assumptions: Vec<_> = c
                .inputs()
                .iter()
                .zip(vector.iter())
                .map(|(&pi, &v)| copy.vars.lit(pi, v))
                .collect();
            assumptions.push(s.positive());
            for val in [false, true] {
                let mut a = assumptions.clone();
                a.push(copy.vars.lit(site, val));
                assert_eq!(
                    solver.solve(&a),
                    SolveResult::Sat,
                    "{encoding:?}: freed gate cannot take value {val}"
                );
            }
            // And the downstream output actually changes with the choice.
            let mut seen = std::collections::HashSet::new();
            for val in [false, true] {
                let mut a = assumptions.clone();
                a.push(copy.vars.lit(site, val));
                solver.solve(&a);
                seen.insert(solver.model_value(copy.vars.lit(out, true)).unwrap());
            }
            assert_eq!(seen.len(), 2, "{encoding:?}: mux has no downstream effect");
        }
    }

    #[test]
    fn force_c_zero_pins_injected_value() {
        let c = c17();
        let site = c.find("G16").unwrap();
        let mut solver = Solver::new();
        let inst = Instrumentation::new(&mut solver, &c, &[site]);
        let copy = encode_instrumented_copy(
            &mut solver,
            &c,
            &inst,
            MuxEncoding::ExplicitMux { force_c_zero: true },
        );
        let s = inst.select(site).unwrap();
        let cvar = copy.injected[site.index()].unwrap();
        // With the mux off, c must be 0.
        assert_eq!(
            solver.solve(&[s.negative(), cvar.positive()]),
            SolveResult::Unsat
        );
        assert_eq!(
            solver.solve(&[s.negative(), cvar.negative()]),
            SolveResult::Sat
        );
    }

    #[test]
    #[should_panic(expected = "primary input")]
    fn rejects_input_site() {
        let c = c17();
        let pi = c.inputs()[0];
        let mut solver = Solver::new();
        let _ = Instrumentation::new(&mut solver, &c, &[pi]);
    }

    #[test]
    #[should_panic(expected = "instrumented twice")]
    fn rejects_duplicate_site() {
        let c = c17();
        let site = c.find("G16").unwrap();
        let mut solver = Solver::new();
        let _ = Instrumentation::new(&mut solver, &c, &[site, site]);
    }
}
