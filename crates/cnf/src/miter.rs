//! Miter construction and SAT-based equivalence checking.
//!
//! The paper's test-sets "may be provided after test-bench simulations,
//! formal verification, or after failing a post-production test". The
//! formal-verification path is a miter: two circuits share their inputs,
//! and a SAT query asks for an input making some output pair differ. Each
//! such counterexample is precisely a failing test triple `(t, o, v)` —
//! SAT-based directed test generation for diagnosis when random
//! simulation fails to expose an error.

use crate::sink::ClauseSink;
use crate::tseitin::{encode_circuit, CircuitVars};
use gatediag_netlist::{Circuit, GateId};
use gatediag_sat::{Lit, SolveResult, Solver, Var};

/// A distinguishing input vector plus the outputs it separates, paired
/// with the golden circuit's value for each differing output.
pub type Distinguisher = (Vec<bool>, Vec<(GateId, bool)>);

/// A miter over two same-interface circuits encoded into a solver.
#[derive(Debug)]
pub struct Miter {
    golden_vars: CircuitVars,
    faulty_vars: CircuitVars,
    /// One "this output pair differs" variable per primary output.
    diff_vars: Vec<Var>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
}

impl Miter {
    /// Builds the miter into `solver`.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' input/output interfaces differ in shape.
    pub fn build(solver: &mut Solver, golden: &Circuit, faulty: &Circuit) -> Miter {
        assert_eq!(
            golden.inputs().len(),
            faulty.inputs().len(),
            "input count mismatch"
        );
        assert_eq!(
            golden.outputs().len(),
            faulty.outputs().len(),
            "output count mismatch"
        );
        let golden_vars = encode_circuit(solver, golden);
        let faulty_vars = encode_circuit(solver, faulty);
        // Tie the inputs together.
        for (&gi, &fi) in golden.inputs().iter().zip(faulty.inputs()) {
            let g = golden_vars.lit(gi, true);
            let f = faulty_vars.lit(fi, true);
            solver.add_clause(&[!g, f]);
            solver.add_clause(&[g, !f]);
        }
        // diff_o <-> (golden_o XOR faulty_o)
        let mut diff_vars = Vec::with_capacity(golden.outputs().len());
        for (&go, &fo) in golden.outputs().iter().zip(faulty.outputs()) {
            let d = ClauseSink::new_var(solver);
            let g = golden_vars.lit(go, true);
            let f = faulty_vars.lit(fo, true);
            solver.add_clause(&[d.negative(), g, f]);
            solver.add_clause(&[d.negative(), !g, !f]);
            solver.add_clause(&[d.positive(), !g, f]);
            solver.add_clause(&[d.positive(), g, !f]);
            diff_vars.push(d);
        }
        // At least one output differs.
        let clause: Vec<Lit> = diff_vars.iter().map(|d| d.positive()).collect();
        solver.add_clause(&clause);
        Miter {
            golden_vars,
            faulty_vars,
            diff_vars,
            inputs: golden.inputs().to_vec(),
            outputs: golden.outputs().to_vec(),
        }
    }

    /// Extracts the counterexample of the current model: the input vector
    /// (in `golden.inputs()` order) and every differing output with its
    /// golden value.
    ///
    /// # Panics
    ///
    /// Panics if the solver holds no model.
    pub fn counterexample(&self, solver: &Solver) -> (Vec<bool>, Vec<(GateId, bool)>) {
        let vector: Vec<bool> = self
            .inputs
            .iter()
            .map(|&pi| {
                solver
                    .model_value(self.golden_vars.lit(pi, true))
                    .expect("model available after SAT")
            })
            .collect();
        let diffs: Vec<(GateId, bool)> = self
            .outputs
            .iter()
            .zip(&self.diff_vars)
            .filter(|(_, d)| solver.model_value(d.positive()) == Some(true))
            .map(|(&o, _)| {
                let golden_value = solver
                    .model_value(self.golden_vars.lit(o, true))
                    .expect("model available after SAT");
                (o, golden_value)
            })
            .collect();
        (vector, diffs)
    }

    /// Blocks the current input vector so the next solve yields a new
    /// counterexample.
    pub fn block_vector(&self, solver: &mut Solver, vector: &[bool]) {
        let clause: Vec<Lit> = self
            .inputs
            .iter()
            .zip(vector)
            .map(|(&pi, &v)| self.golden_vars.lit(pi, !v))
            .collect();
        solver.add_clause(&clause);
    }

    /// The faulty-copy variable map (for advanced constraints).
    pub fn faulty_vars(&self) -> &CircuitVars {
        &self.faulty_vars
    }
}

/// Checks functional equivalence of two same-interface circuits.
///
/// Returns `None` when equivalent, otherwise a distinguishing input vector
/// together with the differing outputs and their golden values.
///
/// # Panics
///
/// Panics if the interfaces differ in shape.
///
/// # Examples
///
/// ```
/// use gatediag_cnf::check_equivalence;
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// assert!(check_equivalence(&golden, &golden).is_none());
/// let (faulty, _) = inject_errors(&golden, 1, 3);
/// // A gate-change error on c17 is always detectable.
/// assert!(check_equivalence(&golden, &faulty).is_some());
/// ```
pub fn check_equivalence(golden: &Circuit, faulty: &Circuit) -> Option<Distinguisher> {
    let mut solver = Solver::new();
    let miter = Miter::build(&mut solver, golden, faulty);
    match solver.solve(&[]) {
        SolveResult::Sat => Some(miter.counterexample(&solver)),
        _ => None,
    }
}

/// Enumerates up to `want` distinct distinguishing input vectors
/// (SAT-based directed test generation).
///
/// Each entry is `(vector, differing outputs with golden values)`. Fewer
/// than `want` entries are returned when the circuits admit fewer
/// distinguishing vectors.
pub fn distinguishing_vectors(
    golden: &Circuit,
    faulty: &Circuit,
    want: usize,
) -> Vec<Distinguisher> {
    let mut solver = Solver::new();
    let miter = Miter::build(&mut solver, golden, faulty);
    let mut found = Vec::new();
    while found.len() < want && solver.solve(&[]) == SolveResult::Sat {
        let (vector, diffs) = miter.counterexample(&solver);
        miter.block_vector(&mut solver, &vector);
        found.push((vector, diffs));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::{c17, inject_errors, parity_tree, RandomCircuitSpec};
    use gatediag_sim::simulate;

    #[test]
    fn identical_circuits_are_equivalent() {
        for c in [c17(), parity_tree(6)] {
            assert!(check_equivalence(&c, &c).is_none());
        }
    }

    #[test]
    fn counterexamples_really_distinguish() {
        for seed in 0..5 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            match check_equivalence(&golden, &faulty) {
                None => {
                    // The injected error must then be functionally redundant:
                    // exhaustively confirm on up to 2^6 vectors.
                    for pattern in 0..1u64 << golden.inputs().len() {
                        let vector: Vec<bool> = (0..golden.inputs().len())
                            .map(|i| pattern >> i & 1 == 1)
                            .collect();
                        assert_eq!(
                            simulate(&golden, &vector)
                                .iter()
                                .zip(golden.outputs())
                                .map(|(_, &o)| simulate(&golden, &vector)[o.index()])
                                .collect::<Vec<_>>(),
                            faulty
                                .outputs()
                                .iter()
                                .map(|&o| simulate(&faulty, &vector)[o.index()])
                                .collect::<Vec<_>>(),
                            "seed {seed}: miter said equivalent but vector differs"
                        );
                    }
                }
                Some((vector, diffs)) => {
                    assert!(!diffs.is_empty());
                    let g = simulate(&golden, &vector);
                    let f = simulate(&faulty, &vector);
                    for (o, golden_value) in diffs {
                        assert_eq!(g[o.index()], golden_value);
                        assert_ne!(f[o.index()], golden_value, "seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn distinguishing_vectors_are_distinct_and_valid() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 9);
        let tests = distinguishing_vectors(&golden, &faulty, 5);
        assert!(!tests.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (vector, diffs) in &tests {
            assert!(seen.insert(vector.clone()), "duplicate vector");
            let g = simulate(&golden, vector);
            let f = simulate(&faulty, vector);
            for &(o, v) in diffs {
                assert_eq!(g[o.index()], v);
                assert_ne!(f[o.index()], v);
            }
        }
    }

    #[test]
    fn exhausts_when_few_vectors_distinguish() {
        // NOT vs BUF on one input: every vector distinguishes; ask for more
        // than exist (2 input patterns).
        let golden = gatediag_netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let faulty = gatediag_netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let tests = distinguishing_vectors(&golden, &faulty, 10);
        assert_eq!(tests.len(), 2);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn rejects_interface_mismatch() {
        let a = c17();
        let b = parity_tree(4);
        let mut solver = Solver::new();
        let _ = Miter::build(&mut solver, &a, &b);
    }
}
