//! Cardinality constraints over select lines.
//!
//! BSAT bounds the number of simultaneously corrected gates by
//! `Σ s_g ≤ k` and *iterates* `k = 1..K` (paper Fig. 3 step 2). Rebuilding
//! the instance per `k` would forfeit learnt clauses, so the totalizer here
//! exposes unary count outputs and turns each bound into a single
//! *assumption literal* — exactly the incremental-SAT usage the paper
//! adopts from Whittemore et al. [19].
//!
//! The totalizer is truncated at `limit + 1` counts, keeping the encoding
//! linear in the number of inputs for the small `k` used in diagnosis.
//! A Sinz sequential-counter encoding with a hard-wired bound is provided
//! for ablation comparisons.

use crate::sink::ClauseSink;
use gatediag_sat::{Lit, Var};

/// A truncated totalizer: unary counter over input literals.
///
/// `outputs()[i]` is implied true whenever at least `i + 1` inputs are
/// true (one-directional encoding, sufficient for at-most bounds used as
/// assumptions).
///
/// # Examples
///
/// ```
/// use gatediag_cnf::Totalizer;
/// use gatediag_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let xs: Vec<_> = (0..4).map(|_| solver.new_var()).collect();
/// let lits: Vec<_> = xs.iter().map(|v| v.positive()).collect();
/// let tot = Totalizer::new(&mut solver, &lits, 2);
/// // Force three inputs true and assume "at most 2": unsatisfiable.
/// let mut assumptions = vec![xs[0].positive(), xs[1].positive(), xs[2].positive()];
/// assumptions.push(tot.at_most(2).unwrap());
/// assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
/// ```
#[derive(Clone, Debug)]
pub struct Totalizer {
    outputs: Vec<Lit>,
    num_inputs: usize,
    limit: usize,
}

impl Totalizer {
    /// Builds the counter over `inputs`, able to express bounds up to
    /// `limit` (`at_most(k)` for any `k ≤ limit`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new<S: ClauseSink>(sink: &mut S, inputs: &[Lit], limit: usize) -> Self {
        assert!(!inputs.is_empty(), "totalizer needs at least one input");
        let cap = limit + 1;
        let outputs = Self::build(sink, inputs, cap);
        Totalizer {
            outputs,
            num_inputs: inputs.len(),
            limit,
        }
    }

    fn build<S: ClauseSink>(sink: &mut S, inputs: &[Lit], cap: usize) -> Vec<Lit> {
        if inputs.len() == 1 {
            return vec![inputs[0]];
        }
        let mid = inputs.len() / 2;
        let left = Self::build(sink, &inputs[..mid], cap);
        let right = Self::build(sink, &inputs[mid..], cap);
        let out_len = (left.len() + right.len()).min(cap);
        let outputs: Vec<Lit> = (0..out_len).map(|_| sink.new_var().positive()).collect();
        // (a_i ∧ b_j) → o_{i+j}. Pairs with i+j beyond the truncation cap
        // are dominated: some (i', j') with i'+j' = out_len already forces
        // the top output, so they are skipped.
        for i in 0..=left.len() {
            for j in 0..=right.len() {
                let total = i + j;
                if total == 0 || total > out_len {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!left[i - 1]);
                }
                if j > 0 {
                    clause.push(!right[j - 1]);
                }
                clause.push(outputs[total - 1]);
                sink.add_clause(&clause);
            }
        }
        outputs
    }

    /// The unary count outputs (`outputs()[i]` ⇒ at least `i+1` inputs).
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Assumption literal enforcing "at most `k` inputs true".
    ///
    /// Returns `None` when the bound is vacuous (`k >= number of inputs`).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the `limit` the totalizer was built for.
    pub fn at_most(&self, k: usize) -> Option<Lit> {
        if k >= self.num_inputs {
            return None;
        }
        assert!(
            k <= self.limit,
            "bound {k} exceeds totalizer limit {}",
            self.limit
        );
        Some(!self.outputs[k])
    }
}

/// Sinz sequential-counter encoding of a *hard* `Σ lits ≤ k` constraint.
///
/// Unlike [`Totalizer`], the bound is baked into the clauses — the
/// paper-basic style where each `k` requires rebuilding. Kept for the
/// ablation benchmarks.
///
/// # Panics
///
/// Panics if `k == 0` (use unit clauses instead) or `lits` is empty.
pub fn encode_at_most_seq<S: ClauseSink>(sink: &mut S, lits: &[Lit], k: usize) {
    assert!(k > 0, "use unit clauses for k = 0");
    assert!(!lits.is_empty(), "empty constraint");
    let n = lits.len();
    if k >= n {
        return; // vacuous
    }
    // registers[i][j]: among lits[0..=i], at least j+1 are true.
    let mut prev: Vec<Var> = (0..k).map(|_| sink.new_var()).collect();
    sink.add_clause(&[!lits[0], prev[0].positive()]);
    for reg in prev.iter().skip(1) {
        sink.add_clause(&[reg.negative()]);
    }
    for &lit_i in lits.iter().skip(1) {
        let regs: Vec<Var> = (0..k).map(|_| sink.new_var()).collect();
        // carry: s_{i,0} ← x_i ∨ s_{i-1,0}
        sink.add_clause(&[!lit_i, regs[0].positive()]);
        sink.add_clause(&[prev[0].negative(), regs[0].positive()]);
        for j in 1..k {
            // s_{i,j} ← (x_i ∧ s_{i-1,j-1}) ∨ s_{i-1,j}
            sink.add_clause(&[!lit_i, prev[j - 1].negative(), regs[j].positive()]);
            sink.add_clause(&[prev[j].negative(), regs[j].positive()]);
        }
        // overflow: x_i ∧ s_{i-1,k-1} forbidden
        sink.add_clause(&[!lit_i, prev[k - 1].negative()]);
        prev = regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CnfCollector;
    use gatediag_sat::{SolveResult, Solver};

    fn setup(n: usize) -> (Solver, Vec<Var>, Vec<Lit>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        (solver, vars, lits)
    }

    fn subset_assumptions(vars: &[Var], pattern: u32) -> Vec<Lit> {
        vars.iter()
            .enumerate()
            .map(|(i, v)| v.lit(pattern >> i & 1 == 1))
            .collect()
    }

    #[test]
    fn totalizer_bounds_exactly() {
        for n in 1..=6usize {
            for limit in 0..=3usize {
                let (mut solver, vars, lits) = setup(n);
                let tot = Totalizer::new(&mut solver, &lits, limit);
                for k in 0..=limit {
                    let Some(bound) = tot.at_most(k) else {
                        continue;
                    };
                    for pattern in 0..1u32 << n {
                        let mut assumptions = subset_assumptions(&vars, pattern);
                        assumptions.push(bound);
                        let expect_sat = pattern.count_ones() as usize <= k;
                        assert_eq!(
                            solver.solve(&assumptions) == SolveResult::Sat,
                            expect_sat,
                            "n={n} limit={limit} k={k} pattern={pattern:b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn totalizer_without_bound_is_free() {
        let (mut solver, vars, lits) = setup(5);
        let _tot = Totalizer::new(&mut solver, &lits, 2);
        // No assumption: any subset is fine.
        for pattern in [0u32, 0b11111, 0b10101] {
            let assumptions = subset_assumptions(&vars, pattern);
            assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
        }
    }

    #[test]
    fn totalizer_vacuous_bound() {
        let (mut solver, _, lits) = setup(3);
        let tot = Totalizer::new(&mut solver, &lits, 3);
        assert!(tot.at_most(3).is_none());
        assert!(tot.at_most(2).is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds totalizer limit")]
    fn totalizer_rejects_excess_bound() {
        let (mut solver, _, lits) = setup(5);
        let tot = Totalizer::new(&mut solver, &lits, 1);
        let _ = tot.at_most(2);
    }

    #[test]
    fn totalizer_is_linear_for_fixed_limit() {
        let count_clauses = |n: usize| {
            let mut sink = CnfCollector::new();
            let lits: Vec<Lit> = (0..n).map(|_| sink.new_var().positive()).collect();
            let _ = Totalizer::new(&mut sink, &lits, 4);
            sink.clauses().len()
        };
        let c100 = count_clauses(100);
        let c800 = count_clauses(800);
        assert!(
            c800 < 12 * c100,
            "truncated totalizer should scale linearly: {c100} -> {c800}"
        );
    }

    #[test]
    fn seq_counter_bounds_exactly() {
        for n in 1..=6usize {
            for k in 1..=3usize {
                let (mut solver, vars, lits) = setup(n);
                encode_at_most_seq(&mut solver, &lits, k);
                for pattern in 0..1u32 << n {
                    let assumptions = subset_assumptions(&vars, pattern);
                    let expect_sat = pattern.count_ones() as usize <= k;
                    assert_eq!(
                        solver.solve(&assumptions) == SolveResult::Sat,
                        expect_sat,
                        "n={n} k={k} pattern={pattern:b}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unit clauses")]
    fn seq_counter_rejects_zero() {
        let (mut solver, _, lits) = setup(2);
        encode_at_most_seq(&mut solver, &lits, 0);
    }
}
