//! Property tests: CNF encodings against the logic simulator and exhaustive
//! subset checks.

use gatediag_cnf::{
    encode_at_most_seq, encode_circuit, encode_instrumented_copy, Instrumentation, MuxEncoding,
    Totalizer,
};
use gatediag_netlist::{GateId, RandomCircuitSpec};
use gatediag_sat::{Lit, SolveResult, Solver, Var};
use gatediag_sim::{simulate, simulate_forced};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random circuits and vectors, the Tseitin encoding constrained to
    /// the vector has exactly the simulator's values as its unique model.
    #[test]
    fn tseitin_equals_simulation(seed in 0u64..500, pattern in any::<u64>()) {
        let circuit = RandomCircuitSpec::new(5, 2, 25).seed(seed).generate();
        let vector: Vec<bool> = (0..circuit.inputs().len())
            .map(|i| pattern >> (i % 64) & 1 == 1)
            .collect();
        let mut solver = Solver::new();
        let vars = encode_circuit(&mut solver, &circuit);
        let assumptions: Vec<Lit> = circuit
            .inputs()
            .iter()
            .zip(&vector)
            .map(|(&pi, &v)| vars.lit(pi, v))
            .collect();
        prop_assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
        let expected = simulate(&circuit, &vector);
        for (id, _) in circuit.iter() {
            prop_assert_eq!(
                solver.model_value(vars.lit(id, true)),
                Some(expected[id.index()])
            );
        }
    }

    /// The instrumented encoding with selects on behaves exactly like
    /// forced-value simulation: fixing the freed gates to chosen values
    /// determines all other gates to the forced-simulation values.
    #[test]
    fn instrumented_encoding_equals_forced_simulation(
        seed in 0u64..200,
        pattern in any::<u64>(),
        forced_bits in any::<u8>(),
    ) {
        let circuit = RandomCircuitSpec::new(5, 2, 20).seed(seed).generate();
        let functional: Vec<GateId> = circuit
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let sites: Vec<GateId> = functional.iter().copied().take(2).collect();
        let vector: Vec<bool> = (0..circuit.inputs().len())
            .map(|i| pattern >> (i % 64) & 1 == 1)
            .collect();
        for encoding in [
            MuxEncoding::Inline,
            MuxEncoding::ExplicitMux { force_c_zero: true },
        ] {
            let mut solver = Solver::new();
            let inst = Instrumentation::new(&mut solver, &circuit, &sites);
            let copy = encode_instrumented_copy(&mut solver, &circuit, &inst, encoding);
            let mut assumptions: Vec<Lit> = circuit
                .inputs()
                .iter()
                .zip(&vector)
                .map(|(&pi, &v)| copy.vars.lit(pi, v))
                .collect();
            let mut forced: Vec<(GateId, bool)> = Vec::new();
            for (i, &site) in sites.iter().enumerate() {
                let sel = inst.select(site).unwrap();
                assumptions.push(sel.positive());
                let value = forced_bits >> i & 1 == 1;
                assumptions.push(copy.vars.lit(site, value));
                forced.push((site, value));
            }
            prop_assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
            let expected = simulate_forced(&circuit, &vector, &forced);
            for (id, _) in circuit.iter() {
                prop_assert_eq!(
                    solver.model_value(copy.vars.lit(id, true)),
                    Some(expected[id.index()]),
                    "{:?} gate {}", encoding, id
                );
            }
        }
    }

    /// Totalizer and sequential counter agree with the popcount semantics
    /// on every subset of up to 7 inputs.
    #[test]
    fn cardinality_encodings_agree(n in 1usize..7, k in 1usize..4) {
        let mut tot_solver = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| tot_solver.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let limit = k.min(n);
        let tot = Totalizer::new(&mut tot_solver, &lits, limit);

        let mut seq_solver = Solver::new();
        let seq_vars: Vec<Var> = (0..n).map(|_| seq_solver.new_var()).collect();
        let seq_lits: Vec<Lit> = seq_vars.iter().map(|v| v.positive()).collect();
        encode_at_most_seq(&mut seq_solver, &seq_lits, k);

        for pattern in 0..1u32 << n {
            let expect = pattern.count_ones() as usize <= k;
            let mut tot_assumptions: Vec<Lit> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| v.lit(pattern >> i & 1 == 1))
                .collect();
            if let Some(bound) = (k <= limit).then(|| tot.at_most(k.min(limit))).flatten() {
                tot_assumptions.push(bound);
            }
            prop_assert_eq!(
                tot_solver.solve(&tot_assumptions) == SolveResult::Sat,
                expect,
                "totalizer n={} k={} pattern={:b}", n, k, pattern
            );
            let seq_assumptions: Vec<Lit> = seq_vars
                .iter()
                .enumerate()
                .map(|(i, v)| v.lit(pattern >> i & 1 == 1))
                .collect();
            prop_assert_eq!(
                seq_solver.solve(&seq_assumptions) == SolveResult::Sat,
                expect,
                "seq n={} k={} pattern={:b}", n, k, pattern
            );
        }
    }
}
