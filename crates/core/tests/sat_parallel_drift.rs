//! Thread-count invariance for the parallel *SAT* layer (PR 3).
//!
//! The SAT side now fans out in three places: the validity `_sat` oracle
//! shards its independent per-test instances over per-worker solvers,
//! `basic_sat_diagnose` generates its per-test CNF copies on a worker
//! pool (replayed into the solver in test order), and the COV SAT engine
//! partitions cover enumeration over the top-level branch set with one
//! solver per branch. Every one of these must produce *bit-identical
//! diagnosis output* for every worker count, including the sequential
//! path — these tests pin that contract the same way `parallel_drift.rs`
//! pins the simulation side.

use gatediag_core::{
    basic_sat_diagnose, cover_all, generate_failing_tests, hybrid_seeded_bsat,
    is_valid_correction_sat, is_valid_correction_sat_par, partitioned_sat_diagnose, sc_diagnose,
    screen_valid_corrections, screen_valid_corrections_sat, two_pass_sat_diagnose, BsatOptions,
    CovEngine, CovOptions, Parallelism, TestSet,
};
use gatediag_netlist::{inject_errors, Circuit, GateId, RandomCircuitSpec};

/// The worker counts every drift test sweeps (mirrors
/// `parallel_drift.rs`): sequential, small real pools, and more workers
/// than this container has cores or the workloads have items.
const WORKER_SWEEP: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Fixed(2),
    Parallelism::Fixed(3),
    Parallelism::Fixed(8),
];

fn workloads() -> Vec<(Circuit, Vec<GateId>, TestSet)> {
    let mut out = Vec::new();
    for seed in 0..3u64 {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
        let (faulty, sites) = inject_errors(&golden, 1 + (seed as usize % 2), seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 8192);
        if !tests.is_empty() {
            let gates = sites.iter().map(|s| s.gate).collect();
            out.push((faulty, gates, tests));
        }
    }
    assert!(!out.is_empty(), "no workload produced failing tests");
    out
}

#[test]
fn bsat_solutions_are_identical_for_all_worker_counts() {
    for (faulty, _, tests) in workloads() {
        let sequential = basic_sat_diagnose(
            &faulty,
            &tests,
            2,
            BsatOptions {
                parallelism: Parallelism::Sequential,
                ..BsatOptions::default()
            },
        );
        assert!(sequential.complete);
        for parallelism in WORKER_SWEEP {
            let parallel = basic_sat_diagnose(
                &faulty,
                &tests,
                2,
                BsatOptions {
                    parallelism,
                    ..BsatOptions::default()
                },
            );
            assert_eq!(
                sequential.solutions, parallel.solutions,
                "BSAT solutions drifted at {parallelism:?}"
            );
            assert_eq!(sequential.complete, parallel.complete);
            // The parallel build replays the exact clause sequence, so
            // even the *search* must be identical, not just the solution
            // set: conflicts and decisions are part of the pinned output.
            assert_eq!(
                sequential.stats.conflicts, parallel.stats.conflicts,
                "search trajectory drifted at {parallelism:?}"
            );
            assert_eq!(sequential.stats.decisions, parallel.stats.decisions);
            assert_eq!(sequential.stats.propagations, parallel.stats.propagations);
        }
    }
}

#[test]
fn bsat_variants_are_worker_count_invariant() {
    for (faulty, _, tests) in workloads() {
        let baseline_two_pass = two_pass_sat_diagnose(
            &faulty,
            &tests,
            2,
            BsatOptions {
                parallelism: Parallelism::Sequential,
                ..BsatOptions::default()
            },
        );
        let baseline_part = partitioned_sat_diagnose(
            &faulty,
            &tests,
            2,
            4,
            BsatOptions {
                parallelism: Parallelism::Sequential,
                ..BsatOptions::default()
            },
        );
        let baseline_hybrid = hybrid_seeded_bsat(
            &faulty,
            &tests,
            2,
            BsatOptions {
                parallelism: Parallelism::Sequential,
                ..BsatOptions::default()
            },
        );
        for parallelism in WORKER_SWEEP {
            let options = BsatOptions {
                parallelism,
                ..BsatOptions::default()
            };
            assert_eq!(
                two_pass_sat_diagnose(&faulty, &tests, 2, options.clone()).solutions,
                baseline_two_pass.solutions,
                "two-pass drifted at {parallelism:?}"
            );
            assert_eq!(
                partitioned_sat_diagnose(&faulty, &tests, 2, 4, options.clone()).solutions,
                baseline_part.solutions,
                "partitioned drifted at {parallelism:?}"
            );
            assert_eq!(
                hybrid_seeded_bsat(&faulty, &tests, 2, options).solutions,
                baseline_hybrid.solutions,
                "hybrid drifted at {parallelism:?}"
            );
        }
    }
}

#[test]
fn sat_validity_oracle_is_worker_count_invariant() {
    for (faulty, error_gates, tests) in workloads() {
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sets: Vec<Vec<GateId>> = functional.iter().take(10).map(|&g| vec![g]).collect();
        sets.push(error_gates.clone());
        sets.push(Vec::new());
        for candidates in &sets {
            let sequential = is_valid_correction_sat(&faulty, &tests, candidates);
            for parallelism in WORKER_SWEEP {
                assert_eq!(
                    is_valid_correction_sat_par(&faulty, &tests, candidates, parallelism),
                    sequential,
                    "per-test sharded oracle drifted at {parallelism:?} on {candidates:?}"
                );
            }
        }
        // Batch screening: both the SAT-only and the auto-dispatching
        // screens, against per-set sequential verdicts.
        let expected: Vec<bool> = sets
            .iter()
            .map(|s| is_valid_correction_sat(&faulty, &tests, s))
            .collect();
        for parallelism in WORKER_SWEEP {
            assert_eq!(
                screen_valid_corrections_sat(&faulty, &tests, &sets, parallelism),
                expected,
                "SAT screening drifted at {parallelism:?}"
            );
            assert_eq!(
                screen_valid_corrections(&faulty, &tests, &sets, parallelism),
                expected,
                "auto-dispatch screening drifted at {parallelism:?}"
            );
        }
        // Degenerate inputs, every worker count.
        for parallelism in WORKER_SWEEP {
            assert!(screen_valid_corrections_sat(&faulty, &tests, &[], parallelism).is_empty());
            assert!(is_valid_correction_sat_par(
                &faulty,
                &TestSet::default(),
                &functional[..1],
                parallelism
            ));
        }
    }
}

#[test]
fn cov_sat_engine_is_identical_for_all_worker_counts() {
    for (faulty, _, tests) in workloads() {
        let small = tests.prefix_at_most(12);
        let sequential = sc_diagnose(
            &faulty,
            &small,
            2,
            CovOptions {
                engine: CovEngine::Sat,
                parallelism: Parallelism::Sequential,
                ..CovOptions::default()
            },
        );
        // The sharded SAT engine must agree with branch-and-bound (the
        // independent cross-check) and with itself at every worker count.
        let bnb = sc_diagnose(
            &faulty,
            &small,
            2,
            CovOptions {
                engine: CovEngine::BranchAndBound,
                parallelism: Parallelism::Sequential,
                ..CovOptions::default()
            },
        );
        assert_eq!(sequential.solutions, bnb.solutions, "SAT vs BnB covers");
        for parallelism in WORKER_SWEEP {
            let parallel = sc_diagnose(
                &faulty,
                &small,
                2,
                CovOptions {
                    engine: CovEngine::Sat,
                    parallelism,
                    ..CovOptions::default()
                },
            );
            assert_eq!(
                sequential.solutions, parallel.solutions,
                "SAT covers drifted at {parallelism:?}"
            );
            assert_eq!(sequential.complete, parallel.complete);
        }
    }
}

#[test]
fn cov_sat_abstract_instances_and_truncation_are_invariant() {
    let g = GateId::new;
    let sets = vec![
        vec![g(0), g(1), g(5), g(6)],
        vec![g(2), g(3), g(4), g(5), g(6)],
        vec![g(1), g(2), g(4), g(7)],
    ];
    for max_solutions in [0usize, 1, 2, 4, 100] {
        let sequential = cover_all(
            &sets,
            3,
            CovOptions {
                engine: CovEngine::Sat,
                max_solutions,
                parallelism: Parallelism::Sequential,
                ..CovOptions::default()
            },
        );
        assert!(sequential.solutions.len() <= max_solutions.max(1));
        for parallelism in WORKER_SWEEP {
            let parallel = cover_all(
                &sets,
                3,
                CovOptions {
                    engine: CovEngine::Sat,
                    max_solutions,
                    parallelism,
                    ..CovOptions::default()
                },
            );
            assert_eq!(
                sequential.solutions, parallel.solutions,
                "truncated SAT covers drifted at {parallelism:?} (max {max_solutions})"
            );
            assert_eq!(sequential.complete, parallel.complete);
        }
    }
    // Edge cases: no sets (one empty cover) and an unhittable empty set.
    for parallelism in WORKER_SWEEP {
        let empty = cover_all(
            &Vec::new(),
            2,
            CovOptions {
                engine: CovEngine::Sat,
                parallelism,
                ..CovOptions::default()
            },
        );
        assert_eq!(empty.solutions, vec![Vec::<GateId>::new()]);
        let unhittable = cover_all(
            &[vec![g(0)], vec![]],
            2,
            CovOptions {
                engine: CovEngine::Sat,
                parallelism,
                ..CovOptions::default()
            },
        );
        assert!(unhittable.solutions.is_empty());
    }
}
