//! No-behavioral-drift guard for the packed/incremental hot-path rewrite.
//!
//! The BSIM batching, validity screening and repair enumeration were
//! rewritten from per-test scalar simulation to `PackedSim` sweeps. These
//! tests pin the rewritten entry points against straightforward
//! reimplementations of the seed's scalar algorithms: candidate sets,
//! mark counts and verdicts must be *bit-identical* on the paper examples
//! and on randomly generated circuits.
//!
//! These back-compat tests deliberately keep exercising the deprecated
//! seed-era entry points (e.g. `is_valid_correction_sim`) — they pin the
//! wrappers, not the replacements.
#![allow(deprecated)]

use gatediag_core::{
    basic_sim_diagnose, find_kind_repairs, generate_failing_tests, is_valid_correction_sim,
    path_trace, BsimOptions, BsimResult, MarkPolicy, Test, TestSet,
};
use gatediag_netlist::{c17, inject_errors, GateId, GateKind, GateSet, RandomCircuitSpec};
use gatediag_sim::{simulate, simulate_forced};

/// The seed's `basic_sim_diagnose`: one scalar simulation per test.
fn reference_bsim(
    circuit: &gatediag_netlist::Circuit,
    tests: &TestSet,
    options: BsimOptions,
) -> BsimResult {
    let mut candidate_sets = Vec::with_capacity(tests.len());
    let mut mark_counts = vec![0u32; circuit.len()];
    let mut union = GateSet::new(circuit.len());
    for test in tests {
        let values = simulate(circuit, &test.vector);
        let marked = path_trace(circuit, &values, test.output, options);
        for g in marked.iter() {
            mark_counts[g.index()] += 1;
        }
        union.union_with(&marked);
        candidate_sets.push(marked);
    }
    let work = candidate_sets.len() as u64;
    BsimResult {
        candidate_sets,
        mark_counts,
        union,
        truncation: None,
        work,
    }
}

/// The seed's validity oracle: per test, scalar simulation of every
/// forced-value combination.
fn reference_validity(
    circuit: &gatediag_netlist::Circuit,
    tests: &TestSet,
    candidates: &[GateId],
) -> bool {
    tests.iter().all(|t| {
        let combos = 1u64 << candidates.len();
        (0..combos).any(|combo| {
            let forced: Vec<(GateId, bool)> = candidates
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, combo >> i & 1 == 1))
                .collect();
            let values = simulate_forced(circuit, &t.vector, &forced);
            values[t.output.index()] == t.expected
        })
    })
}

/// The seed's repair verifier: clone the circuit per assignment and
/// scalar-simulate every test.
fn reference_repairs(
    circuit: &gatediag_netlist::Circuit,
    tests: &TestSet,
    correction: &[GateId],
) -> Vec<Vec<(GateId, GateKind)>> {
    let menus: Vec<Vec<GateKind>> = correction
        .iter()
        .map(|&g| {
            GateKind::compatible_with_arity(circuit.gate(g).arity())
                .iter()
                .copied()
                .filter(|&k| k != circuit.gate(g).kind())
                .collect()
        })
        .collect();
    let mut repairs = Vec::new();
    let mut choice: Vec<usize> = vec![0; correction.len()];
    loop {
        let assignment: Vec<(GateId, GateKind)> = correction
            .iter()
            .zip(&choice)
            .map(|(&g, &c)| {
                (
                    g,
                    menus[correction.iter().position(|&x| x == g).unwrap()][c],
                )
            })
            .collect();
        let mut repaired = circuit.clone();
        for &(g, kind) in &assignment {
            repaired = repaired.with_gate_kind(g, kind);
        }
        let fixes_all = tests.iter().all(|t| {
            let values = simulate(&repaired, &t.vector);
            values[t.output.index()] == t.expected
        });
        if fixes_all {
            repairs.push(assignment);
        }
        let mut pos = 0;
        loop {
            if pos == choice.len() {
                return repairs;
            }
            choice[pos] += 1;
            if choice[pos] < menus[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

fn workloads() -> Vec<(gatediag_netlist::Circuit, Vec<GateId>, TestSet)> {
    let mut out = Vec::new();
    // Paper example circuit.
    for seed in 0..4u64 {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 4096);
        if !tests.is_empty() {
            out.push((faulty, sites.iter().map(|s| s.gate).collect(), tests));
        }
    }
    // Random circuits, 1-2 injected errors, enough tests to span
    // multiple 64-lane words in the repair batch.
    for seed in 0..6u64 {
        let golden = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
        let p = 1 + (seed as usize % 2);
        let (faulty, sites) = inject_errors(&golden, p, seed);
        let tests = generate_failing_tests(&golden, &faulty, 80, seed, 1 << 14);
        if !tests.is_empty() {
            out.push((faulty, sites.iter().map(|s| s.gate).collect(), tests));
        }
    }
    out
}

#[test]
fn bsim_is_bit_identical_to_scalar_reference() {
    for (faulty, _, tests) in workloads() {
        for policy in [MarkPolicy::FirstControlling, MarkPolicy::AllControlling] {
            for include_inputs in [false, true] {
                let options = BsimOptions {
                    policy,
                    include_inputs,
                    ..BsimOptions::default()
                };
                let fast = basic_sim_diagnose(&faulty, &tests, options);
                let reference = reference_bsim(&faulty, &tests, options);
                assert_eq!(fast.mark_counts, reference.mark_counts);
                assert_eq!(fast.candidate_sets, reference.candidate_sets);
                assert_eq!(
                    fast.union.iter().collect::<Vec<_>>(),
                    reference.union.iter().collect::<Vec<_>>()
                );
                assert_eq!(fast.gmax(), reference.gmax());
            }
        }
    }
}

#[test]
fn bsim_batches_beyond_one_word_per_sweep() {
    // At least one workload must exceed 64 tests so the multi-word sweep
    // path is exercised, not just the single-word fast path.
    assert!(
        workloads().iter().any(|(_, _, t)| t.len() > 64),
        "no workload spans multiple pattern words"
    );
}

#[test]
fn validity_verdicts_are_bit_identical_to_scalar_reference() {
    for (faulty, errors, tests) in workloads() {
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        // Real error sites (valid) plus sliding windows of functional
        // gates (a mix of valid and invalid candidate sets).
        let mut candidate_sets: Vec<Vec<GateId>> = vec![errors.clone()];
        for start in (0..functional.len().saturating_sub(3)).step_by(7) {
            candidate_sets.push(functional[start..start + 3].to_vec());
            candidate_sets.push(vec![functional[start]]);
        }
        candidate_sets.push(Vec::new());
        for candidates in candidate_sets {
            let small = tests.prefix_at_most(6);
            assert_eq!(
                is_valid_correction_sim(&faulty, &small, &candidates),
                reference_validity(&faulty, &small, &candidates),
                "verdict drift on {candidates:?}"
            );
        }
    }
}

#[test]
fn validity_multiword_and_multibatch_paths_match_reference() {
    // 7 candidates -> 128 combos -> 2 words per gate (multi-word path);
    // 11 candidates -> 2048 combos -> two batches at the 16-word
    // SCREEN_WORDS cap (batch-restart path). Both must agree with the
    // scalar exhaustive reference, from multiple circuit regions so both
    // verdicts are plausible.
    let mut exercised = 0;
    for seed in 0..8u64 {
        let golden = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
        let (faulty, _) = inject_errors(&golden, 1, seed);
        let tests = generate_failing_tests(&golden, &faulty, 4, seed, 1 << 14);
        if tests.is_empty() {
            continue;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        for size in [7usize, 11] {
            if functional.len() < size {
                continue;
            }
            for candidates in [&functional[..size], &functional[functional.len() - size..]] {
                exercised += 1;
                assert_eq!(
                    is_valid_correction_sim(&faulty, &tests, candidates),
                    reference_validity(&faulty, &tests, candidates),
                    "seed {seed}: verdict drift on |C| = {size}"
                );
            }
        }
        if exercised >= 8 {
            break;
        }
    }
    assert!(exercised >= 4, "wide candidate sets never exercised");
}

#[test]
fn repairs_are_bit_identical_to_scalar_reference() {
    for (faulty, errors, tests) in workloads() {
        let correction: Vec<GateId> = errors.iter().copied().take(2).collect();
        let fast = find_kind_repairs(&faulty, &tests, &correction);
        let reference = reference_repairs(&faulty, &tests, &correction);
        assert_eq!(fast, reference, "repair drift at sites {correction:?}");
    }
}

#[test]
fn repairs_match_reference_on_non_error_sites() {
    // Corrections that do NOT cover the real error sites usually admit no
    // repair; the engines must agree on that too (enumeration order and
    // all).
    let golden = c17();
    let (faulty, sites) = inject_errors(&golden, 1, 2);
    let tests = generate_failing_tests(&golden, &faulty, 8, 2, 4096);
    if tests.is_empty() {
        return;
    }
    for (id, g) in faulty.iter() {
        if g.kind().is_source() || sites.iter().any(|s| s.gate == id) {
            continue;
        }
        let fast = find_kind_repairs(&faulty, &tests, &[id]);
        let reference = reference_repairs(&faulty, &tests, &[id]);
        assert_eq!(fast, reference, "repair drift at non-error site {id}");
    }
}

#[test]
fn repairs_on_constant_sites_match_reference() {
    // path_trace marks constants as correctable candidates, so repair
    // enumeration must handle Const0/Const1 correction sites exactly as
    // the seed's clone-and-resimulate path did.
    use gatediag_netlist::CircuitBuilder;
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let k = b.anon_gate(GateKind::Const0, vec![]);
    let y = b.gate(GateKind::Or, vec![a, k], "y");
    b.output(y);
    let faulty = b.finish().unwrap();
    // One failing test: with a = 0 the output should be 1 (as if the
    // constant had been Const1 in the golden design).
    let tests = TestSet::new(vec![Test {
        vector: vec![false],
        output: y,
        expected: true,
    }]);
    let fast = find_kind_repairs(&faulty, &tests, &[k]);
    let reference = reference_repairs(&faulty, &tests, &[k]);
    assert_eq!(fast, reference);
    assert_eq!(fast, vec![vec![(k, GateKind::Const1)]]);
}

#[test]
fn empty_test_set_edge_cases_agree() {
    let c = c17();
    let empty = TestSet::default();
    let fast = basic_sim_diagnose(&c, &empty, BsimOptions::default());
    assert!(fast.candidate_sets.is_empty());
    assert!(is_valid_correction_sim(&c, &empty, &[]));
    let g = c.find("G16").unwrap();
    assert_eq!(
        find_kind_repairs(&c, &empty, &[g]),
        reference_repairs(&c, &empty, &[g])
    );
}

#[test]
fn single_test_struct_roundtrip() {
    // Path tracing through the public scalar API still matches the packed
    // diagnose on a hand-built test.
    let c = c17();
    let t = Test {
        vector: vec![false; 5],
        output: c.find("G22").unwrap(),
        expected: true,
    };
    let ts = TestSet::new(vec![t.clone()]);
    let fast = basic_sim_diagnose(&c, &ts, BsimOptions::default());
    let values = simulate(&c, &t.vector);
    let reference = path_trace(&c, &values, t.output, BsimOptions::default());
    assert_eq!(fast.candidate_sets[0], reference);
}
