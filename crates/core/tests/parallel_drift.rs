//! Thread-count invariance for the parallel diagnosis layer.
//!
//! Every parallel entry point — sharded BSIM, the fanned-out backtrack
//! search, the sharded repair enumeration, the branch-parallel cover
//! engine and the batch validity screen — must be *bit-identical* to its
//! sequential counterpart for every worker count, including degenerate
//! cases (one worker, more workers than work items, empty work). These
//! tests pin that contract explicitly; `proptest_parallel.rs` fuzzes it
//! on random circuits.
//!
//! Back-compat: the deprecated seed-era oracles stay exercised here on
//! purpose — drift tests compare against what the seed computed.
#![allow(deprecated)]

use gatediag_core::{
    basic_sim_diagnose, cover_all, find_kind_repairs_par, generate_failing_tests,
    is_valid_correction_sim, sc_diagnose, screen_valid_corrections_sim, sim_backtrack_diagnose,
    BsimOptions, CovEngine, CovOptions, MarkPolicy, Parallelism, SimBacktrackOptions, TestSet,
};
use gatediag_netlist::{c17, inject_errors, Circuit, GateId, RandomCircuitSpec};

/// The worker counts every drift test sweeps: the inline sequential path,
/// a couple of real pools, and far more workers than this container has
/// cores (or, for the small workloads, than there are work items).
const WORKER_SWEEP: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Fixed(2),
    Parallelism::Fixed(3),
    Parallelism::Fixed(8),
];

fn workloads() -> Vec<(Circuit, Vec<GateId>, TestSet)> {
    let mut out = Vec::new();
    for seed in 0..3u64 {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 4096);
        if !tests.is_empty() {
            out.push((faulty, sites.iter().map(|s| s.gate).collect(), tests));
        }
    }
    // Enough tests to span several 64-test shards, so the parallel BSIM
    // path really splits work instead of degenerating to one batch.
    for seed in 0..4u64 {
        let golden = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
        let p = 1 + (seed as usize % 2);
        let (faulty, sites) = inject_errors(&golden, p, seed);
        let tests = generate_failing_tests(&golden, &faulty, 200, seed, 1 << 14);
        if !tests.is_empty() {
            out.push((faulty, sites.iter().map(|s| s.gate).collect(), tests));
        }
    }
    out
}

#[test]
fn bsim_is_identical_for_all_worker_counts() {
    for (faulty, _, tests) in workloads() {
        for policy in [MarkPolicy::FirstControlling, MarkPolicy::AllControlling] {
            let sequential = basic_sim_diagnose(
                &faulty,
                &tests,
                BsimOptions {
                    policy,
                    parallelism: Parallelism::Sequential,
                    ..BsimOptions::default()
                },
            );
            for parallelism in WORKER_SWEEP {
                let parallel = basic_sim_diagnose(
                    &faulty,
                    &tests,
                    BsimOptions {
                        policy,
                        parallelism,
                        ..BsimOptions::default()
                    },
                );
                assert_eq!(
                    sequential.candidate_sets, parallel.candidate_sets,
                    "candidate sets drifted at {parallelism:?}"
                );
                assert_eq!(sequential.mark_counts, parallel.mark_counts);
                assert_eq!(
                    sequential.union.iter().collect::<Vec<_>>(),
                    parallel.union.iter().collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn bsim_empty_test_set_is_identical() {
    let c = c17();
    for parallelism in WORKER_SWEEP {
        let result = basic_sim_diagnose(
            &c,
            &TestSet::default(),
            BsimOptions {
                parallelism,
                ..BsimOptions::default()
            },
        );
        assert!(result.candidate_sets.is_empty());
        assert!(result.union.is_empty());
    }
}

#[test]
fn sim_backtrack_is_identical_for_all_worker_counts() {
    for (faulty, _, tests) in workloads() {
        let small = tests.prefix_at_most(8);
        let sequential = sim_backtrack_diagnose(
            &faulty,
            &small,
            2,
            SimBacktrackOptions {
                parallelism: Parallelism::Sequential,
                ..SimBacktrackOptions::default()
            },
        );
        for parallelism in WORKER_SWEEP {
            for x_pruning in [true, false] {
                let parallel = sim_backtrack_diagnose(
                    &faulty,
                    &small,
                    2,
                    SimBacktrackOptions {
                        parallelism,
                        x_pruning,
                        ..SimBacktrackOptions::default()
                    },
                );
                // x_pruning is conservative, so it never changes results
                // either; fold it into the sweep for coverage.
                assert_eq!(sequential, parallel, "solutions drifted at {parallelism:?}");
            }
        }
    }
}

#[test]
fn sim_backtrack_budget_zero_and_empty_tests() {
    let (faulty, _, tests) = workloads().remove(0);
    for parallelism in WORKER_SWEEP {
        let options = SimBacktrackOptions {
            parallelism,
            ..SimBacktrackOptions::default()
        };
        assert!(sim_backtrack_diagnose(&faulty, &tests, 0, options).is_empty());
        // Empty test set: every singleton is trivially valid, so the
        // result is all size-1 sets of marked gates — of which there are
        // none, because no tests means no marks.
        assert!(sim_backtrack_diagnose(&faulty, &TestSet::default(), 2, options).is_empty());
    }
}

#[test]
fn sim_backtrack_max_solutions_truncation_is_identical() {
    for (faulty, _, tests) in workloads().into_iter().take(3) {
        let small = tests.prefix_at_most(6);
        for max_solutions in [1usize, 2, 3] {
            let sequential = sim_backtrack_diagnose(
                &faulty,
                &small,
                2,
                SimBacktrackOptions {
                    max_solutions,
                    parallelism: Parallelism::Sequential,
                    ..SimBacktrackOptions::default()
                },
            );
            for parallelism in WORKER_SWEEP {
                let parallel = sim_backtrack_diagnose(
                    &faulty,
                    &small,
                    2,
                    SimBacktrackOptions {
                        max_solutions,
                        parallelism,
                        ..SimBacktrackOptions::default()
                    },
                );
                assert_eq!(
                    sequential, parallel,
                    "truncated search drifted at {parallelism:?} (max {max_solutions})"
                );
            }
        }
    }
}

#[test]
fn kind_repairs_are_identical_for_all_worker_counts() {
    for (faulty, errors, tests) in workloads() {
        let correction: Vec<GateId> = errors.iter().copied().take(2).collect();
        let sequential =
            find_kind_repairs_par(&faulty, &tests, &correction, Parallelism::Sequential);
        for parallelism in WORKER_SWEEP {
            assert_eq!(
                sequential,
                find_kind_repairs_par(&faulty, &tests, &correction, parallelism),
                "repair list drifted at {parallelism:?} for {correction:?}"
            );
        }
        // Empty correction: the single empty assignment, every shard count.
        for parallelism in WORKER_SWEEP {
            assert_eq!(
                find_kind_repairs_par(&faulty, &tests, &[], Parallelism::Sequential),
                find_kind_repairs_par(&faulty, &tests, &[], parallelism)
            );
        }
    }
}

#[test]
fn cov_bnb_is_identical_for_all_worker_counts_and_agrees_with_sat() {
    for (faulty, _, tests) in workloads() {
        let small = tests.prefix_at_most(12);
        let sat = sc_diagnose(
            &faulty,
            &small,
            2,
            CovOptions {
                engine: CovEngine::Sat,
                ..CovOptions::default()
            },
        );
        let sequential = sc_diagnose(
            &faulty,
            &small,
            2,
            CovOptions {
                engine: CovEngine::BranchAndBound,
                parallelism: Parallelism::Sequential,
                ..CovOptions::default()
            },
        );
        assert_eq!(sat.solutions, sequential.solutions, "SAT vs BnB covers");
        for parallelism in WORKER_SWEEP {
            let parallel = sc_diagnose(
                &faulty,
                &small,
                2,
                CovOptions {
                    engine: CovEngine::BranchAndBound,
                    parallelism,
                    ..CovOptions::default()
                },
            );
            assert_eq!(
                sequential.solutions, parallel.solutions,
                "covers drifted at {parallelism:?}"
            );
            assert_eq!(sequential.complete, parallel.complete);
        }
    }
}

#[test]
fn cov_bnb_truncation_is_identical() {
    // Abstract covering instance with many covers, truncated hard.
    let g = GateId::new;
    let sets = vec![
        vec![g(0), g(1), g(5), g(6)],
        vec![g(2), g(3), g(4), g(5), g(6)],
        vec![g(1), g(2), g(4), g(7)],
    ];
    // max_solutions == 0 keeps the seed's quirk: truncation was only
    // noticed after a push, so the first cover is still reported.
    for max_solutions in [0usize, 1, 2, 4, 100] {
        let sequential = cover_all(
            &sets,
            3,
            CovOptions {
                engine: CovEngine::BranchAndBound,
                max_solutions,
                parallelism: Parallelism::Sequential,
                ..CovOptions::default()
            },
        );
        for parallelism in WORKER_SWEEP {
            let parallel = cover_all(
                &sets,
                3,
                CovOptions {
                    engine: CovEngine::BranchAndBound,
                    max_solutions,
                    parallelism,
                    ..CovOptions::default()
                },
            );
            assert_eq!(
                sequential.solutions, parallel.solutions,
                "covers drifted at {parallelism:?} (max {max_solutions})"
            );
            assert_eq!(sequential.complete, parallel.complete);
        }
        if max_solutions == 0 {
            // Seed behaviour: truncation is only noticed after the first
            // push, so enumeration stops at one raw cover (which the
            // irredundancy filter may still drop) and reports truncation.
            assert!(sequential.solutions.len() <= 1);
            assert!(!sequential.complete);
        }
    }
}

#[test]
fn screening_matches_oracle_for_all_worker_counts() {
    for (faulty, errors, tests) in workloads().into_iter().take(4) {
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sets: Vec<Vec<GateId>> = functional.iter().map(|&g| vec![g]).collect();
        sets.push(errors.clone());
        sets.push(Vec::new());
        let small = tests.prefix_at_most(6);
        let expected: Vec<bool> = sets
            .iter()
            .map(|s| is_valid_correction_sim(&faulty, &small, s))
            .collect();
        for parallelism in WORKER_SWEEP {
            assert_eq!(
                screen_valid_corrections_sim(&faulty, &small, &sets, parallelism),
                expected,
                "verdicts drifted at {parallelism:?}"
            );
        }
    }
}
