//! Determinism of the cooperative budget subsystem, extending the
//! drift-test contract of `parallel_drift.rs`: a *work*-truncated run
//! must be bit-identical for every worker count, and the truncated
//! output must be a faithful prefix of the unbudgeted run wherever the
//! engine defines one (BSIM's traced tests). Wall-clock deadlines are
//! exercised only for their cooperative-stop behaviour — their outputs
//! are nondeterministic by design and never compared across runs.

use gatediag_core::budget::{Budget, Truncation};
use gatediag_core::{
    basic_sat_diagnose, basic_sim_diagnose, cover_all, generate_failing_tests, sc_diagnose,
    screen_valid_corrections_metered, BsatOptions, BsimOptions, CovEngine, CovOptions, Parallelism,
    ValidityBackend,
};
use gatediag_netlist::{inject_errors, Circuit, GateId, RandomCircuitSpec};
use std::time::{Duration, Instant};

const WORKER_SWEEP: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Fixed(2),
    Parallelism::Fixed(3),
    Parallelism::Fixed(8),
];

fn workload(seed: u64) -> Option<(Circuit, gatediag_core::TestSet)> {
    let golden = RandomCircuitSpec::new(7, 3, 60).seed(seed).generate();
    let (faulty, _) = inject_errors(&golden, 1 + (seed as usize % 2), seed);
    let tests = generate_failing_tests(&golden, &faulty, 200, seed, 1 << 14);
    (!tests.is_empty()).then_some((faulty, tests))
}

#[test]
fn bsim_work_budget_truncates_to_a_prefix_identically() {
    for seed in 0..3u64 {
        let Some((faulty, tests)) = workload(seed) else {
            continue;
        };
        let full = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        assert_eq!(full.truncation, None);
        assert_eq!(full.work, tests.len() as u64);
        for budget_units in [0u64, 1, 7, 64, 100] {
            let budget = Budget {
                work: Some(budget_units),
                ..Budget::default()
            };
            let sequential = basic_sim_diagnose(
                &faulty,
                &tests,
                BsimOptions {
                    budget,
                    parallelism: Parallelism::Sequential,
                    ..BsimOptions::default()
                },
            );
            let traced = (budget_units as usize).min(tests.len());
            assert_eq!(sequential.candidate_sets.len(), traced);
            assert_eq!(sequential.work, traced as u64);
            if traced < tests.len() {
                assert_eq!(sequential.truncation, Some(Truncation::Work));
            } else {
                assert_eq!(sequential.truncation, None);
            }
            // The truncated run is the prefix of the full run.
            assert_eq!(
                sequential.candidate_sets[..],
                full.candidate_sets[..traced],
                "seed {seed} budget {budget_units}: not a faithful prefix"
            );
            // And bit-identical for every worker count.
            for parallelism in WORKER_SWEEP {
                let parallel = basic_sim_diagnose(
                    &faulty,
                    &tests,
                    BsimOptions {
                        budget,
                        parallelism,
                        ..BsimOptions::default()
                    },
                );
                assert_eq!(
                    sequential, parallel,
                    "seed {seed} budget {budget_units}: drifted at {parallelism:?}"
                );
            }
        }
    }
}

#[test]
fn cov_work_budget_is_worker_count_invariant() {
    for seed in 0..3u64 {
        let Some((faulty, tests)) = workload(seed) else {
            continue;
        };
        let small = tests.prefix_at_most(12);
        for engine in [CovEngine::BranchAndBound, CovEngine::Sat] {
            // A ladder of budgets from "preempts the BSIM phase" through
            // "preempts the covering phase" to "never trips".
            for budget_units in [1u64, 13, 40, 1 << 40] {
                let options = |parallelism| CovOptions {
                    engine,
                    parallelism,
                    budget: Budget {
                        work: Some(budget_units),
                        ..Budget::default()
                    },
                    ..CovOptions::default()
                };
                let sequential = sc_diagnose(&faulty, &small, 2, options(Parallelism::Sequential));
                assert_eq!(
                    sequential.complete,
                    sequential.truncation.is_none(),
                    "complete/truncation out of sync"
                );
                for parallelism in WORKER_SWEEP {
                    let parallel = sc_diagnose(&faulty, &small, 2, options(parallelism));
                    assert_eq!(
                        sequential.solutions, parallel.solutions,
                        "seed {seed} {engine:?} budget {budget_units}: solutions drifted at {parallelism:?}"
                    );
                    assert_eq!(sequential.truncation, parallel.truncation);
                    assert_eq!(sequential.work, parallel.work);
                }
            }
        }
    }
}

#[test]
fn cov_bnb_node_budget_truncates_the_abstract_instance() {
    // The covering phase alone (no BSIM): node budgets bite mid-search.
    let g = GateId::new;
    let sets = vec![
        vec![g(0), g(1), g(5), g(6)],
        vec![g(2), g(3), g(4), g(5), g(6)],
        vec![g(1), g(2), g(4), g(7)],
    ];
    let full = cover_all(
        &sets,
        3,
        CovOptions {
            engine: CovEngine::BranchAndBound,
            ..CovOptions::default()
        },
    );
    assert!(full.complete && full.work > 0);
    let mut saw_preemption = false;
    for budget_units in [1u64, 2, 4, 16, 1 << 30] {
        let budget = Budget {
            work: Some(budget_units),
            ..Budget::default()
        };
        let reference = cover_all(
            &sets,
            3,
            CovOptions {
                engine: CovEngine::BranchAndBound,
                parallelism: Parallelism::Sequential,
                budget,
                ..CovOptions::default()
            },
        );
        if reference.truncation == Some(Truncation::Work) {
            saw_preemption = true;
            assert!(!reference.complete);
            // Truncated solutions are a subset of the complete ones.
            for sol in &reference.solutions {
                assert!(full.solutions.contains(sol), "{sol:?} not in full run");
            }
        }
        for parallelism in WORKER_SWEEP {
            let parallel = cover_all(
                &sets,
                3,
                CovOptions {
                    engine: CovEngine::BranchAndBound,
                    parallelism,
                    budget,
                    ..CovOptions::default()
                },
            );
            assert_eq!(reference.solutions, parallel.solutions);
            assert_eq!(reference.truncation, parallel.truncation);
            assert_eq!(reference.work, parallel.work);
        }
    }
    assert!(
        saw_preemption,
        "no budget in the ladder preempted the search"
    );
}

#[test]
fn bsat_work_budget_acts_as_a_conflict_budget() {
    // Work and conflicts are the same unit for BSAT; whichever is smaller
    // binds, and the reported reason names the binding limit.
    for seed in 0..20u64 {
        let Some((faulty, tests)) = workload(seed) else {
            continue;
        };
        let small = tests.prefix_at_most(8);
        let unbudgeted = basic_sat_diagnose(&faulty, &small, 2, BsatOptions::default());
        if unbudgeted.stats.conflicts == 0 {
            continue;
        }
        let via_work = basic_sat_diagnose(
            &faulty,
            &small,
            2,
            BsatOptions {
                budget: Budget {
                    work: Some(1),
                    ..Budget::default()
                },
                ..BsatOptions::default()
            },
        );
        assert_eq!(via_work.truncation, Some(Truncation::Work));
        assert!(!via_work.complete);
        let via_conflicts = basic_sat_diagnose(
            &faulty,
            &small,
            2,
            BsatOptions {
                conflict_budget: Some(1),
                ..BsatOptions::default()
            },
        );
        assert_eq!(via_conflicts.truncation, Some(Truncation::Conflicts));
        // Same binding limit, same surviving solutions — only the
        // reported reason differs.
        assert_eq!(via_work.solutions, via_conflicts.solutions);
        return;
    }
    panic!("no workload produced conflicts to budget");
}

#[test]
fn metered_screen_truncates_sets_deterministically() {
    let (faulty, tests) = (0..8u64)
        .find_map(workload)
        .expect("some seed must yield a workload");
    let small = tests.prefix_at_most(8);
    let functional: Vec<GateId> = faulty
        .iter()
        .filter(|(_, g)| !g.kind().is_source())
        .map(|(id, _)| id)
        .take(12)
        .collect();
    let sets: Vec<Vec<GateId>> = functional.iter().map(|&g| vec![g]).collect();
    let unlimited = screen_valid_corrections_metered(
        &faulty,
        &small,
        &sets,
        Parallelism::Sequential,
        ValidityBackend::Auto,
        &Budget::default(),
    );
    assert_eq!(unlimited.verdicts.len(), sets.len());
    assert_eq!(unlimited.truncation, None);
    for budget_units in [0u64, 1, 5, 100] {
        let budget = Budget {
            work: Some(budget_units),
            ..Budget::default()
        };
        let screened = (budget_units as usize).min(sets.len());
        for parallelism in WORKER_SWEEP {
            let out = screen_valid_corrections_metered(
                &faulty,
                &small,
                &sets,
                parallelism,
                ValidityBackend::Auto,
                &budget,
            );
            assert_eq!(out.verdicts.len(), screened);
            assert_eq!(out.verdicts[..], unlimited.verdicts[..screened]);
            assert_eq!(out.work, screened as u64);
            if screened < sets.len() {
                assert_eq!(out.truncation, Some(Truncation::Work));
            } else {
                assert_eq!(out.truncation, None);
            }
        }
    }
}

#[test]
fn expired_deadline_stops_promptly_and_is_flagged() {
    // Deadline outputs are nondeterministic, so only the *shape* is
    // asserted: an already-expired deadline must stop each engine at its
    // first checkpoint and flag the run as deadline-truncated.
    let (faulty, tests) = (0..8u64)
        .find_map(workload)
        .expect("some seed must yield a workload");
    let expired = Budget {
        deadline_ms: Some(1),
        ..Budget::default()
    }
    .anchored(Instant::now() - Duration::from_secs(1));

    let bsim = basic_sim_diagnose(
        &faulty,
        &tests,
        BsimOptions {
            budget: expired,
            ..BsimOptions::default()
        },
    );
    assert_eq!(bsim.truncation, Some(Truncation::Deadline));
    assert!(bsim.candidate_sets.is_empty());

    let cov = sc_diagnose(
        &faulty,
        &tests.prefix(4),
        2,
        CovOptions {
            budget: expired,
            ..CovOptions::default()
        },
    );
    assert_eq!(cov.truncation, Some(Truncation::Deadline));
    assert!(!cov.complete);

    let bsat = basic_sat_diagnose(
        &faulty,
        &tests.prefix(4),
        2,
        BsatOptions {
            budget: expired,
            ..BsatOptions::default()
        },
    );
    assert_eq!(bsat.truncation, Some(Truncation::Deadline));
    assert!(!bsat.complete);

    // A generous deadline changes nothing.
    let generous = Budget {
        deadline_ms: Some(600_000),
        ..Budget::default()
    };
    let normal = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
    let with_deadline = basic_sim_diagnose(
        &faulty,
        &tests,
        BsimOptions {
            budget: generous,
            ..BsimOptions::default()
        },
    );
    assert_eq!(normal, with_deadline);
}
