//! Property tests: parallel diagnosis output equals sequential output on
//! random circuits, for random worker counts.
//!
//! The explicit drift suite (`parallel_drift.rs`) pins hand-picked edge
//! cases; here random circuit shapes, error multiplicities, test-set sizes
//! and worker counts are fuzzed together. Any schedule-dependent state in
//! the worker pool, the shard merge, or the per-worker engine reuse would
//! surface as a mismatch.

use gatediag_core::{
    basic_sim_diagnose, find_kind_repairs_par, generate_failing_tests, sim_backtrack_diagnose,
    BsimOptions, MarkPolicy, Parallelism, SimBacktrackOptions,
};
use gatediag_netlist::{inject_errors, GateId, RandomCircuitSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded BSIM equals sequential BSIM: candidate sets, mark counts
    /// and union, for any circuit and worker count.
    #[test]
    fn parallel_bsim_equals_sequential(
        seed in 0u64..500,
        errors in 1usize..=2,
        num_tests in 1usize..150,
        workers in 1usize..9,
        all_controlling in any::<bool>(),
    ) {
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
        let (faulty, _) = inject_errors(&golden, errors, seed);
        let tests = generate_failing_tests(&golden, &faulty, num_tests, seed, 1 << 13);
        let policy = if all_controlling {
            MarkPolicy::AllControlling
        } else {
            MarkPolicy::FirstControlling
        };
        let sequential = basic_sim_diagnose(&faulty, &tests, BsimOptions {
            policy,
            parallelism: Parallelism::Sequential,
            ..BsimOptions::default()
        });
        let parallel = basic_sim_diagnose(&faulty, &tests, BsimOptions {
            policy,
            parallelism: Parallelism::Fixed(workers),
            ..BsimOptions::default()
        });
        prop_assert_eq!(&sequential.candidate_sets, &parallel.candidate_sets);
        prop_assert_eq!(&sequential.mark_counts, &parallel.mark_counts);
    }

    /// The fanned-out backtrack search equals the sequential search.
    #[test]
    fn parallel_backtrack_equals_sequential(
        seed in 0u64..500,
        errors in 1usize..=2,
        k in 1usize..=2,
        workers in 1usize..9,
    ) {
        let golden = RandomCircuitSpec::new(6, 3, 35).seed(seed).generate();
        let (faulty, _) = inject_errors(&golden, errors, seed);
        let tests = generate_failing_tests(&golden, &faulty, 6, seed, 1 << 13);
        let sequential = sim_backtrack_diagnose(&faulty, &tests, k, SimBacktrackOptions {
            parallelism: Parallelism::Sequential,
            ..SimBacktrackOptions::default()
        });
        let parallel = sim_backtrack_diagnose(&faulty, &tests, k, SimBacktrackOptions {
            parallelism: Parallelism::Fixed(workers),
            ..SimBacktrackOptions::default()
        });
        prop_assert_eq!(sequential, parallel);
    }

    /// The sharded repair enumeration equals the sequential enumeration,
    /// including the order of the repair list.
    #[test]
    fn parallel_repairs_equal_sequential(
        seed in 0u64..500,
        errors in 1usize..=2,
        workers in 1usize..9,
    ) {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
        let (faulty, sites) = inject_errors(&golden, errors, seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 13);
        let correction: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
        let sequential =
            find_kind_repairs_par(&faulty, &tests, &correction, Parallelism::Sequential);
        let parallel =
            find_kind_repairs_par(&faulty, &tests, &correction, Parallelism::Fixed(workers));
        prop_assert_eq!(sequential, parallel);
    }
}
