//! Property tests for SAT-guided discriminating-test generation: every
//! vector harvested from a solver model must round-trip through packed
//! simulation as a real failing test, and blocking clauses must actually
//! exclude previously harvested vectors from later queries.
//!
//! The unit tests in `gatediag_core::testgen` pin hand-picked scenarios;
//! here random circuit shapes, injection seeds and error multiplicities
//! are fuzzed together, so any disagreement between the CNF encoding and
//! the simulation semantics (a mis-encoded gate, a harvest bit written to
//! the wrong lane, a blocking clause over the wrong variables) surfaces
//! as a counterexample.

use gatediag_core::{
    distinguish_pair, generate_discriminating_tests, generate_failing_tests, run_engine, Budget,
    EngineConfig, EngineKind, PairOutcome, Parallelism, TestGenPolicy, ValidityBackend,
};
use gatediag_netlist::{inject_errors, Circuit, GateKind, RandomCircuitSpec};
use gatediag_sim::simulate;
use proptest::prelude::*;

/// A random workload with an observable injected error: the golden and
/// faulty circuits, the first real error site, and the failing tests.
fn workload(
    seed: u64,
    errors: usize,
) -> Option<(
    Circuit,
    Circuit,
    gatediag_netlist::GateId,
    gatediag_core::TestSet,
)> {
    let golden = RandomCircuitSpec::new(5, 3, 30).seed(seed).generate();
    let (faulty, sites) = inject_errors(&golden, errors, seed);
    let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 13);
    if tests.is_empty() {
        return None;
    }
    Some((golden, faulty, sites[0].gate, tests))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Harvest round-trip: every test the generator emits was harvested
    /// from a SAT model into packed-simulation lanes — replaying it
    /// through plain simulation must reproduce a genuine failing test
    /// (golden's value is `expected`, the faulty circuit disagrees), and
    /// the shrinkage invariants must hold.
    #[test]
    fn harvested_tests_replay_as_real_failing_tests(
        seed in 0u64..300,
        errors in 1usize..=2,
    ) {
        let Some((golden, faulty, _, tests)) = workload(seed, errors) else {
            return Ok(());
        };
        let run = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
        let outcome = generate_discriminating_tests(
            &golden,
            &faulty,
            &run.solutions,
            &TestGenPolicy::default(),
            &Budget::default(),
            Parallelism::Sequential,
            ValidityBackend::default(),
        );
        prop_assert_eq!(outcome.solutions_before, run.solutions.len());
        prop_assert!(outcome.solutions_after <= outcome.solutions_before);
        prop_assert_eq!(outcome.solutions_after, outcome.survivors.len());
        prop_assert!(
            outcome.survivors.windows(2).all(|w| w[0] < w[1]),
            "survivor indices not ascending"
        );
        for t in &outcome.tests {
            let g = simulate(&golden, &t.vector);
            let f = simulate(&faulty, &t.vector);
            // Harvested `expected` is golden's value; the faulty circuit
            // must disagree (a genuine failing test).
            prop_assert_eq!(g[t.output.index()], t.expected);
            prop_assert_ne!(f[t.output.index()], t.expected);
        }
    }

    /// Blocking round-trip: enumerating distinguishing vectors for one
    /// pair with `distinguish_pair`, feeding every harvested vector back
    /// as blocked, never sees a vector twice and terminates (the input
    /// space is finite, so blocking must drain it).
    #[test]
    fn blocked_vectors_never_reappear(
        seed in 0u64..300,
        errors in 1usize..=2,
    ) {
        let Some((golden, faulty, site, _)) = workload(seed, errors) else {
            return Ok(());
        };
        let Some(wrong) = faulty
            .iter()
            .find(|(id, g)| *id != site && g.kind() != GateKind::Input)
            .map(|(id, _)| id)
        else {
            return Ok(());
        };
        let mut blocked: Vec<Vec<bool>> = Vec::new();
        let mut drained = false;
        // 5 inputs = at most 32 distinct vectors; anything past that is a
        // blocking failure.
        let cap = 1 << golden.inputs().len();
        for _ in 0..=cap {
            match distinguish_pair(&golden, &faulty, &[site], &[wrong], &blocked, None) {
                PairOutcome::Distinguished(found) => {
                    prop_assert!(!found.is_empty());
                    let vector = found[0].vector.clone();
                    for t in &found {
                        // All tests of one query share the model's
                        // vector, and each must fail on the faulty
                        // circuit.
                        prop_assert_eq!(&t.vector, &vector);
                        let f = simulate(&faulty, &t.vector);
                        prop_assert_ne!(f[t.output.index()], t.expected);
                    }
                    prop_assert!(
                        !blocked.contains(&vector),
                        "blocked vector harvested again"
                    );
                    blocked.push(vector);
                }
                PairOutcome::Indistinguishable => {
                    drained = true;
                    break;
                }
                PairOutcome::Unknown => {
                    prop_assert!(false, "unbounded query returned Unknown");
                }
            }
        }
        prop_assert!(drained, "blocking never drained the input space");
    }
}
