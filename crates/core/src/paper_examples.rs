//! The paper's witness circuits (Fig. 5) as reusable fixtures.
//!
//! These two tiny circuits carry the theoretical payload of Sec. 3:
//!
//! * [`lemma2_witness`] — a cover returned by COV that is *not* a valid
//!   correction (Lemma 2 ⇒ Theorem 1);
//! * [`lemma4_witness`] — a valid correction that COV can never return
//!   because path tracing never marks one of its gates (Lemma 4 ⇒
//!   Theorem 2).
//!
//! The circuits are reconstructed from the lemma proofs (the figure's gate
//! labels are preserved via gate names); the tests in this module and the
//! `relations` integration tests verify that each circuit exhibits exactly
//! the behaviour the proofs claim.

use crate::test_set::{Test, TestSet};
use gatediag_netlist::{Circuit, CircuitBuilder, GateKind};

/// A witness fixture: a faulty circuit plus the single failing test from
/// the paper's figure.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The circuit under diagnosis.
    pub circuit: Circuit,
    /// The single-test test-set of the figure.
    pub tests: TestSet,
}

/// Fig. 5(a): the erroneous output can only be fixed by touching `A` or
/// `D` (or the output itself), yet `{B}` (or `{C}`) covers the single
/// path-tracing candidate set.
///
/// Construction: `A = AND(x1, x2)` with `x1 = x2 = 1`, `B = BUF(A)`,
/// `C = BUF(A)`, `D = NOR(B, C)` as output. The output reads 0 but should
/// be 1. Both of `D`'s inputs carry the NOR's controlling value 1, so path
/// tracing marks exactly one of `B`/`C` — giving `C_1 = {A, B, D}` (or
/// `{A, C, D}`). `{B}` covers `C_1`, but forcing `B` alone leaves
/// `D = NOR(·, 1) = 0`: not a valid correction.
pub fn lemma2_witness() -> Witness {
    let mut b = CircuitBuilder::new();
    b.name("fig5a");
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let a = b.gate(GateKind::And, vec![x1, x2], "A");
    let gb = b.gate(GateKind::Buf, vec![a], "B");
    let gc = b.gate(GateKind::Buf, vec![a], "C");
    let d = b.gate(GateKind::Nor, vec![gb, gc], "D");
    b.output(d);
    let circuit = b.finish().expect("fig5a is well-formed");
    let tests = TestSet::new(vec![Test {
        vector: vec![true, true],
        output: d,
        expected: true,
    }]);
    Witness { circuit, tests }
}

/// Fig. 5(b): `{A, B}` is a valid correction for `k = 2`, but path tracing
/// produces the single candidate set `{A, C, D, E}` which does not contain
/// `B` — so COV can never report `{A, B}`.
///
/// Construction (inputs `a = b = 1`, `c = 0`):
/// `A = AND(a, b) = 1`, `B = AND(b, c) = 0`, `C = NOT(A) = 0`,
/// `D = AND(C, B) = 0`, `E = BUF(D) = 0` as output, expected 1.
/// At `D` both inputs are 0 (AND-controlling); tracing marks the first
/// fan-in `C` and proceeds through `A`, never touching `B`. Changing
/// `A` and `B` together (`A → 0 ⇒ C = 1`, `B → 1`) makes
/// `D = 1 ⇒ E = 1`: a valid, irredundant size-2 correction.
pub fn lemma4_witness() -> Witness {
    let mut bld = CircuitBuilder::new();
    bld.name("fig5b");
    let a_in = bld.input("a");
    let b_in = bld.input("b");
    let c_in = bld.input("c");
    let a = bld.gate(GateKind::And, vec![a_in, b_in], "A");
    let b = bld.gate(GateKind::And, vec![b_in, c_in], "B");
    let c = bld.gate(GateKind::Not, vec![a], "C");
    let d = bld.gate(GateKind::And, vec![c, b], "D");
    let e = bld.gate(GateKind::Buf, vec![d], "E");
    bld.output(e);
    let circuit = bld.finish().expect("fig5b is well-formed");
    let tests = TestSet::new(vec![Test {
        vector: vec![true, true, false],
        output: e,
        expected: true,
    }]);
    Witness { circuit, tests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsat::{basic_sat_diagnose, BsatOptions};
    use crate::bsim::{basic_sim_diagnose, BsimOptions};
    use crate::cov::{sc_diagnose, CovOptions};
    use crate::validity::{is_valid_correction, is_valid_correction_sat};
    use gatediag_sim::simulate;

    #[test]
    fn lemma2_figure_values_match() {
        let w = lemma2_witness();
        let v = simulate(&w.circuit, &w.tests.tests()[0].vector);
        let d = w.circuit.find("D").unwrap();
        assert!(!v[d.index()], "output must be erroneous 0 (expected 1)");
    }

    #[test]
    fn lemma2_path_trace_marks_a_b_d() {
        let w = lemma2_witness();
        let bsim = basic_sim_diagnose(&w.circuit, &w.tests, BsimOptions::default());
        let names: Vec<&str> = bsim.candidate_sets[0]
            .iter()
            .map(|g| w.circuit.gate_name(g).unwrap())
            .collect();
        assert_eq!(names, vec!["A", "B", "D"]);
    }

    #[test]
    fn lemma2_cover_b_is_not_a_valid_correction() {
        let w = lemma2_witness();
        let cov = sc_diagnose(&w.circuit, &w.tests, 2, CovOptions::default());
        let b = w.circuit.find("B").unwrap();
        // {B} is a COV solution (it hits the single candidate set)...
        assert!(
            cov.solutions.contains(&vec![b]),
            "{{B}} should be a cover: {:?}",
            cov.solutions
        );
        // ...but it is not a valid correction (Lemma 2).
        assert!(!is_valid_correction(&w.circuit, &w.tests, &[b]));
        assert!(!is_valid_correction_sat(&w.circuit, &w.tests, &[b]));
    }

    #[test]
    fn lemma2_theorem1_cov_minus_bsat_nonempty() {
        let w = lemma2_witness();
        let cov = sc_diagnose(&w.circuit, &w.tests, 2, CovOptions::default());
        let bsat = basic_sat_diagnose(&w.circuit, &w.tests, 2, BsatOptions::default());
        // Theorem 1: some COV solution is not a BSAT solution.
        assert!(cov
            .solutions
            .iter()
            .any(|sol| !bsat.solutions.contains(sol)));
        // And all BSAT solutions are valid (Lemma 1).
        for sol in &bsat.solutions {
            assert!(is_valid_correction(&w.circuit, &w.tests, sol));
        }
    }

    #[test]
    fn lemma4_figure_values_match() {
        let w = lemma4_witness();
        let v = simulate(&w.circuit, &w.tests.tests()[0].vector);
        let c = &w.circuit;
        assert!(v[c.find("A").unwrap().index()]);
        assert!(!v[c.find("B").unwrap().index()]);
        assert!(!v[c.find("C").unwrap().index()]);
        assert!(!v[c.find("D").unwrap().index()]);
        assert!(!v[c.find("E").unwrap().index()], "output erroneous 0");
    }

    #[test]
    fn lemma4_path_trace_marks_acde_only() {
        let w = lemma4_witness();
        let bsim = basic_sim_diagnose(&w.circuit, &w.tests, BsimOptions::default());
        let names: Vec<&str> = bsim.candidate_sets[0]
            .iter()
            .map(|g| w.circuit.gate_name(g).unwrap())
            .collect();
        assert_eq!(names, vec!["A", "C", "D", "E"]);
    }

    #[test]
    fn lemma4_ab_is_valid_but_cov_misses_it() {
        let w = lemma4_witness();
        let a = w.circuit.find("A").unwrap();
        let b = w.circuit.find("B").unwrap();
        // {A, B} is a valid correction...
        assert!(is_valid_correction(&w.circuit, &w.tests, &[a, b]));
        assert!(is_valid_correction_sat(&w.circuit, &w.tests, &[a, b]));
        // ...and irredundant (neither singleton suffices)...
        assert!(!is_valid_correction(&w.circuit, &w.tests, &[a]));
        assert!(!is_valid_correction(&w.circuit, &w.tests, &[b]));
        // ...BSAT with k=2 finds it (Lemma 3)...
        let bsat = basic_sat_diagnose(&w.circuit, &w.tests, 2, BsatOptions::default());
        assert!(
            bsat.solutions.contains(&vec![a, b]),
            "BSAT must find {{A,B}}: {:?}",
            bsat.solutions
        );
        // ...but COV cannot (Lemma 4 / Theorem 2).
        let cov = sc_diagnose(&w.circuit, &w.tests, 2, CovOptions::default());
        assert!(
            !cov.solutions.contains(&vec![a, b]),
            "COV must miss {{A,B}}: {:?}",
            cov.solutions
        );
    }

    #[test]
    fn lemma4_bsat_singletons_are_d_and_e() {
        let w = lemma4_witness();
        let d = w.circuit.find("D").unwrap();
        let e = w.circuit.find("E").unwrap();
        let bsat = basic_sat_diagnose(&w.circuit, &w.tests, 1, BsatOptions::default());
        assert_eq!(bsat.solutions, vec![vec![d], vec![e]]);
    }
}
