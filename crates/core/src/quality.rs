//! Diagnosis quality metrics (paper Table 3).
//!
//! All metrics are structural distances from reported candidates to the
//! nearest actual error site — "the number of gates on a shortest path to
//! any error" — computed over the undirected gate graph. Small distances
//! mean the designer starts close to the bug.

use crate::bsim::BsimResult;
use gatediag_netlist::{undirected_distances, Circuit, GateId};

/// BSIM quality metrics (left half of Table 3).
#[derive(Clone, PartialEq, Debug)]
pub struct BsimQuality {
    /// `|∪ C_i|`: total number of gates marked by path tracing.
    pub union_size: usize,
    /// `avgA`: average distance-to-nearest-error over all marked gates.
    pub avg_all: f64,
    /// `|G_max|`: number of gates marked by the maximal number of tests.
    pub gmax_size: usize,
    /// Minimal distance among `G_max` (0 means a real error site is in
    /// `G_max`).
    pub gmax_min: u32,
    /// Maximal distance among `G_max`.
    pub gmax_max: u32,
    /// `avgG`: average distance among `G_max`.
    pub gmax_avg: f64,
}

/// Solution-set quality metrics (COV / BSAT halves of Table 3).
#[derive(Clone, PartialEq, Debug)]
pub struct SolutionQuality {
    /// Number of solutions (`#sol`).
    pub num_solutions: usize,
    /// Minimum over solutions of the per-solution average distance.
    pub min: f64,
    /// Maximum over solutions of the per-solution average distance.
    pub max: f64,
    /// Average over solutions of the per-solution average distance.
    pub avg: f64,
}

fn finite(d: u32) -> f64 {
    // Unreachable gates (disconnected pseudo-I/O) are rare; treat them as a
    // large-but-finite distance so averages stay meaningful.
    if d == u32::MAX {
        1e6
    } else {
        f64::from(d)
    }
}

/// Computes the BSIM quality metrics against the actual error sites.
///
/// # Panics
///
/// Panics if `errors` is empty.
pub fn bsim_quality(circuit: &Circuit, bsim: &BsimResult, errors: &[GateId]) -> BsimQuality {
    assert!(!errors.is_empty(), "need at least one error site");
    let dist = undirected_distances(circuit, errors);
    let marked: Vec<GateId> = bsim.union.iter().collect();
    let avg_all = if marked.is_empty() {
        0.0
    } else {
        marked.iter().map(|g| finite(dist[g.index()])).sum::<f64>() / marked.len() as f64
    };
    let gmax = bsim.gmax();
    let (gmax_min, gmax_max, gmax_avg) = if gmax.is_empty() {
        (0, 0, 0.0)
    } else {
        let ds: Vec<u32> = gmax.iter().map(|g| dist[g.index()]).collect();
        (
            ds.iter().copied().min().expect("non-empty"),
            ds.iter().copied().max().expect("non-empty"),
            ds.iter().map(|&d| finite(d)).sum::<f64>() / ds.len() as f64,
        )
    };
    BsimQuality {
        union_size: marked.len(),
        avg_all,
        gmax_size: gmax.len(),
        gmax_min,
        gmax_max,
        gmax_avg,
    }
}

/// Computes solution-set quality: per solution the average distance of its
/// gates to the nearest error, then min/max/avg over solutions.
///
/// Returns zeros for an empty solution list.
///
/// # Panics
///
/// Panics if `errors` is empty.
pub fn solution_quality(
    circuit: &Circuit,
    solutions: &[Vec<GateId>],
    errors: &[GateId],
) -> SolutionQuality {
    assert!(!errors.is_empty(), "need at least one error site");
    if solutions.is_empty() {
        return SolutionQuality {
            num_solutions: 0,
            min: 0.0,
            max: 0.0,
            avg: 0.0,
        };
    }
    let dist = undirected_distances(circuit, errors);
    let per_solution: Vec<f64> = solutions
        .iter()
        .map(|sol| {
            if sol.is_empty() {
                0.0
            } else {
                sol.iter().map(|g| finite(dist[g.index()])).sum::<f64>() / sol.len() as f64
            }
        })
        .collect();
    SolutionQuality {
        num_solutions: solutions.len(),
        min: per_solution.iter().copied().fold(f64::INFINITY, f64::min),
        max: per_solution
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
        avg: per_solution.iter().sum::<f64>() / per_solution.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsim::{basic_sim_diagnose, BsimOptions};
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};

    #[test]
    fn exact_hit_has_distance_zero() {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(2).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 2);
        let error = sites[0].gate;
        let q = solution_quality(&faulty, &[vec![error]], &[error]);
        assert_eq!(q.num_solutions, 1);
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 0.0);
        assert_eq!(q.avg, 0.0);
    }

    #[test]
    fn min_max_avg_ordering() {
        let golden = RandomCircuitSpec::new(6, 3, 60).seed(3).generate();
        let (faulty, sites) = inject_errors(&golden, 2, 3);
        let errors: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let solutions: Vec<Vec<GateId>> =
            functional.chunks(2).take(5).map(|c| c.to_vec()).collect();
        let q = solution_quality(&faulty, &solutions, &errors);
        assert!(q.min <= q.avg && q.avg <= q.max);
        assert_eq!(q.num_solutions, solutions.len());
    }

    #[test]
    fn bsim_quality_consistency() {
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(7).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 7);
        let errors: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
        let tests = generate_failing_tests(&golden, &faulty, 8, 7, 8192);
        if tests.is_empty() {
            return;
        }
        let bsim = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        let q = bsim_quality(&faulty, &bsim, &errors);
        assert_eq!(q.union_size, bsim.union.len());
        assert_eq!(q.gmax_size, bsim.gmax().len());
        assert!(q.gmax_min <= q.gmax_max);
        assert!(f64::from(q.gmax_min) <= q.gmax_avg);
        assert!(q.gmax_avg <= f64::from(q.gmax_max));
        assert!(q.avg_all >= 0.0);
    }

    #[test]
    fn empty_solutions_give_zeroes() {
        let golden = RandomCircuitSpec::new(5, 2, 20).seed(1).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 1);
        let q = solution_quality(&faulty, &[], &[sites[0].gate]);
        assert_eq!(q.num_solutions, 0);
        assert_eq!(q.avg, 0.0);
    }
}
