//! Sequential diagnosis via time-frame expansion.
//!
//! The paper notes the SAT-based approach "has also been applied to
//! diagnose sequential errors efficiently" (its reference [4], Ali et
//! al., ICCAD 2004). The construction: unroll the sequential circuit over
//! the test sequence's time frames; a gate-change error affects *every*
//! frame, so the per-gate select line is shared across frames (and across
//! test sequences), exactly like it is shared across test copies in the
//! combinational case.

use crate::test_set::TestSet;
use gatediag_cnf::{encode_gate, ClauseSink, Totalizer};
use gatediag_netlist::{unroll, Circuit, GateId, GateKind};
use gatediag_sat::{enumerate_positive_subsets, Lit, SolveResult, Solver, Var};
use gatediag_sim::simulate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A sequential diagnosis test: an input sequence driving the circuit from
/// a known initial state, with one erroneous primary output at one frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequenceTest {
    /// Initial flip-flop state (in `circuit.latches()` order).
    pub initial_state: Vec<bool>,
    /// Per-frame primary-input vectors (real inputs only, in the order
    /// given by [`real_inputs`]).
    pub vectors: Vec<Vec<bool>>,
    /// Frame at which the erroneous output was observed.
    pub frame: usize,
    /// The erroneous primary output (an output of the original circuit).
    pub output: GateId,
    /// Its correct value.
    pub expected: bool,
}

/// The circuit's *real* primary inputs (excluding flip-flop pseudo-inputs),
/// in `circuit.inputs()` order.
pub fn real_inputs(circuit: &Circuit) -> Vec<GateId> {
    let latch_q: Vec<GateId> = circuit.latches().iter().map(|l| l.q).collect();
    circuit
        .inputs()
        .iter()
        .copied()
        .filter(|pi| !latch_q.contains(pi))
        .collect()
}

/// Simulates an input sequence; returns the full value assignment per
/// frame.
///
/// # Panics
///
/// Panics if `initial_state` or any vector has the wrong width.
pub fn simulate_sequence(
    circuit: &Circuit,
    initial_state: &[bool],
    vectors: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    assert_eq!(
        initial_state.len(),
        circuit.latches().len(),
        "initial state width mismatch"
    );
    let reals = real_inputs(circuit);
    let latch_q: Vec<GateId> = circuit.latches().iter().map(|l| l.q).collect();
    let mut state: Vec<bool> = initial_state.to_vec();
    let mut frames = Vec::with_capacity(vectors.len());
    for vector in vectors {
        assert_eq!(vector.len(), reals.len(), "input vector width mismatch");
        // Assemble the combinational input vector in circuit.inputs() order.
        let mut full = Vec::with_capacity(circuit.inputs().len());
        let mut real_iter = vector.iter();
        for &pi in circuit.inputs() {
            if let Some(pos) = latch_q.iter().position(|&q| q == pi) {
                full.push(state[pos]);
            } else {
                full.push(*real_iter.next().expect("width checked above"));
            }
        }
        let values = simulate(circuit, &full);
        state = circuit
            .latches()
            .iter()
            .map(|l| values[l.d.index()])
            .collect();
        frames.push(values);
    }
    frames
}

/// Generates failing sequence tests for a golden/faulty pair by random
/// sequence simulation (both circuits start from the all-zero state).
///
/// Each returned test pinpoints the first frame/output where the faulty
/// circuit deviates on a sequence.
pub fn generate_failing_sequences(
    golden: &Circuit,
    faulty: &Circuit,
    frames: usize,
    want: usize,
    seed: u64,
    max_sequences: usize,
) -> Vec<SequenceTest> {
    let reals = real_inputs(golden);
    let real_outputs: Vec<GateId> = {
        let latch_d: Vec<GateId> = golden.latches().iter().map(|l| l.d).collect();
        golden
            .outputs()
            .iter()
            .copied()
            .filter(|o| !latch_d.contains(o))
            .collect()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb);
    let mut tests = Vec::new();
    let initial_state = vec![false; golden.latches().len()];
    for _ in 0..max_sequences {
        if tests.len() >= want {
            break;
        }
        let vectors: Vec<Vec<bool>> = (0..frames)
            .map(|_| (0..reals.len()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let g_frames = simulate_sequence(golden, &initial_state, &vectors);
        let f_frames = simulate_sequence(faulty, &initial_state, &vectors);
        'frames: for (frame, (g, f)) in g_frames.iter().zip(&f_frames).enumerate() {
            for &o in &real_outputs {
                if g[o.index()] != f[o.index()] {
                    tests.push(SequenceTest {
                        initial_state: initial_state.clone(),
                        vectors: vectors.clone(),
                        frame,
                        output: o,
                        expected: g[o.index()],
                    });
                    break 'frames;
                }
            }
        }
    }
    tests
}

/// Result of a sequential SAT-based diagnosis run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqDiagnosis {
    /// Corrections in terms of the *original* circuit's gates, sorted.
    pub solutions: Vec<Vec<GateId>>,
    /// `false` if enumeration was truncated.
    pub complete: bool,
}

/// Sequential `BasicSATDiagnose`: one unrolled instrumented copy per
/// sequence test, select lines shared per original gate across frames and
/// tests.
///
/// All tests must have the same sequence length.
///
/// # Panics
///
/// Panics if `tests` is empty or sequence lengths differ.
pub fn sequential_sat_diagnose(
    circuit: &Circuit,
    tests: &[SequenceTest],
    k: usize,
    max_solutions: usize,
) -> SeqDiagnosis {
    assert!(!tests.is_empty(), "need at least one sequence test");
    let frames = tests[0].vectors.len();
    assert!(
        tests.iter().all(|t| t.vectors.len() == frames),
        "all sequences must have the same length"
    );
    let unrolled = unroll(circuit, frames);
    let reals = real_inputs(circuit);

    let mut solver = Solver::new();
    // One shared select per original functional gate.
    let sites: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| g.kind() != GateKind::Input)
        .map(|(id, _)| id)
        .collect();
    let selects: Vec<Var> = sites
        .iter()
        .map(|_| ClauseSink::new_var(&mut solver))
        .collect();
    let mut select_of: Vec<Option<Var>> = vec![None; circuit.len()];
    for (&site, &sel) in sites.iter().zip(&selects) {
        select_of[site.index()] = Some(sel);
    }
    // Map unrolled gates back to original gates for select sharing.
    let mut origin: Vec<Option<GateId>> = vec![None; unrolled.circuit.len()];
    for frame in 0..frames {
        for (id, _) in circuit.iter() {
            origin[unrolled.instance(frame, id).index()] = Some(id);
        }
    }

    for test in tests {
        // Encode one copy of the unrolled circuit with guards.
        let vars: Vec<Var> = (0..unrolled.circuit.len())
            .map(|_| ClauseSink::new_var(&mut solver))
            .collect();
        for &uid in unrolled.circuit.topo_order() {
            let gate = unrolled.circuit.gate(uid);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let guard = origin[uid.index()]
                .and_then(|orig| select_of[orig.index()])
                .map(|s| s.positive());
            let fanins: Vec<Lit> = gate
                .fanins()
                .iter()
                .map(|f| vars[f.index()].positive())
                .collect();
            encode_gate(&mut solver, gate.kind(), vars[uid.index()], &fanins, guard);
        }
        // Constrain initial state.
        for (init_pi, &v) in unrolled.initial_state.iter().zip(&test.initial_state) {
            solver.add_clause(&[vars[init_pi.index()].lit(v)]);
        }
        // Constrain per-frame real inputs.
        for (frame, vector) in test.vectors.iter().enumerate() {
            for (&pi, &v) in reals.iter().zip(vector) {
                let inst = unrolled.instance(frame, pi);
                solver.add_clause(&[vars[inst.index()].lit(v)]);
            }
        }
        // Constrain the erroneous output at its frame.
        let out_inst = unrolled.instance(test.frame, test.output);
        solver.add_clause(&[vars[out_inst.index()].lit(test.expected)]);
    }

    let select_lits: Vec<Lit> = selects.iter().map(|v| v.positive()).collect();
    let totalizer = Totalizer::new(&mut solver, &select_lits, k.min(selects.len()));

    let mut solutions: Vec<Vec<GateId>> = Vec::new();
    let mut complete = true;
    'sizes: for size in 1..=k.min(selects.len()) {
        let assumptions: Vec<Lit> = totalizer.at_most(size).into_iter().collect();
        let remaining = max_solutions.saturating_sub(solutions.len());
        if remaining == 0 {
            complete = false;
            break 'sizes;
        }
        let out = enumerate_positive_subsets(&mut solver, &selects, &assumptions, remaining);
        for subset in out.solutions {
            let mut gates: Vec<GateId> = subset
                .iter()
                .map(|v| {
                    let pos = selects.iter().position(|s| s == v).expect("known select");
                    sites[pos]
                })
                .collect();
            gates.sort();
            solutions.push(gates);
        }
        if !out.complete {
            complete = false;
            break 'sizes;
        }
    }
    solutions.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    SeqDiagnosis {
        solutions,
        complete,
    }
}

/// Exact validity check for sequential corrections by SAT: the candidate
/// gates are freed in *every* frame of every test's unrolling.
pub fn is_valid_sequential_correction(
    circuit: &Circuit,
    tests: &[SequenceTest],
    candidates: &[GateId],
) -> bool {
    if tests.is_empty() {
        return true;
    }
    let frames = tests[0].vectors.len();
    let unrolled = unroll(circuit, frames);
    let reals = real_inputs(circuit);
    let mut freed = vec![false; unrolled.circuit.len()];
    for &g in candidates {
        for frame in 0..frames {
            freed[unrolled.instance(frame, g).index()] = true;
        }
    }
    tests.iter().all(|test| {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..unrolled.circuit.len())
            .map(|_| ClauseSink::new_var(&mut solver))
            .collect();
        for &uid in unrolled.circuit.topo_order() {
            let gate = unrolled.circuit.gate(uid);
            if gate.kind() == GateKind::Input || freed[uid.index()] {
                continue;
            }
            let fanins: Vec<Lit> = gate
                .fanins()
                .iter()
                .map(|f| vars[f.index()].positive())
                .collect();
            encode_gate(&mut solver, gate.kind(), vars[uid.index()], &fanins, None);
        }
        for (init_pi, &v) in unrolled.initial_state.iter().zip(&test.initial_state) {
            solver.add_clause(&[vars[init_pi.index()].lit(v)]);
        }
        for (frame, vector) in test.vectors.iter().enumerate() {
            for (&pi, &v) in reals.iter().zip(vector) {
                let inst = unrolled.instance(frame, pi);
                solver.add_clause(&[vars[inst.index()].lit(v)]);
            }
        }
        let out_inst = unrolled.instance(test.frame, test.output);
        solver.add_clause(&[vars[out_inst.index()].lit(test.expected)]);
        solver.solve(&[]) == SolveResult::Sat
    })
}

/// Converts sequence tests into combinational [`TestSet`]s over the
/// unrolled circuit (for reusing combinational engines on sequential
/// problems). All tests must share one sequence length; the returned
/// test-set targets the unrolled circuit of [`unroll`].
///
/// Note: combinational diagnosis over the unrolling treats each *frame
/// instance* of a gate as an independent candidate; only the sequential
/// engine above shares selects per original gate.
pub fn sequence_tests_to_unrolled(
    circuit: &Circuit,
    tests: &[SequenceTest],
) -> (gatediag_netlist::Unrolling, TestSet) {
    assert!(!tests.is_empty(), "need at least one sequence test");
    let frames = tests[0].vectors.len();
    let unrolled = unroll(circuit, frames);
    let reals = real_inputs(circuit);
    let mut set = Vec::new();
    for test in tests {
        // Assemble the unrolled input vector in unrolled.inputs() order.
        let mut value_of = std::collections::HashMap::new();
        for (init_pi, &v) in unrolled.initial_state.iter().zip(&test.initial_state) {
            value_of.insert(*init_pi, v);
        }
        for (frame, vector) in test.vectors.iter().enumerate() {
            for (&pi, &v) in reals.iter().zip(vector) {
                value_of.insert(unrolled.instance(frame, pi), v);
            }
        }
        let vector: Vec<bool> = unrolled
            .circuit
            .inputs()
            .iter()
            .map(|pi| *value_of.get(pi).expect("all unrolled inputs covered"))
            .collect();
        set.push(crate::test_set::Test {
            vector,
            output: unrolled.instance(test.frame, test.output),
            expected: test.expected,
        });
    }
    (unrolled, TestSet::new(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::{inject_errors, parse_bench, RandomCircuitSpec};

    fn toggle_circuit() -> Circuit {
        parse_bench("INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n").unwrap()
    }

    #[test]
    fn sequence_simulation_matches_hand_computation() {
        let c = toggle_circuit();
        let frames = simulate_sequence(&c, &[false], &[vec![true], vec![false], vec![true]]);
        let out = c.find("out").unwrap();
        // q: 0 -> 1 -> 1 -> 0; out shows q before update.
        assert!(!frames[0][out.index()]);
        assert!(frames[1][out.index()]);
        assert!(frames[2][out.index()]);
    }

    #[test]
    fn failing_sequences_really_fail() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 8, 3, 512);
        assert!(!tests.is_empty());
        for t in &tests {
            let g = simulate_sequence(&golden, &t.initial_state, &t.vectors);
            let f = simulate_sequence(&faulty, &t.initial_state, &t.vectors);
            assert_eq!(g[t.frame][t.output.index()], t.expected);
            assert_ne!(f[t.frame][t.output.index()], t.expected);
        }
    }

    #[test]
    fn sequential_diagnosis_finds_injected_error() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 6, 3, 512);
        assert!(!tests.is_empty());
        let diag = sequential_sat_diagnose(&faulty, &tests, 1, 1000);
        assert!(diag.complete);
        assert!(
            diag.solutions.contains(&vec![d]),
            "error gate {d} missing from {:?}",
            diag.solutions
        );
        for sol in &diag.solutions {
            assert!(
                is_valid_sequential_correction(&faulty, &tests, sol),
                "invalid sequential correction {sol:?}"
            );
        }
    }

    #[test]
    fn sequential_diagnosis_on_random_sequential_circuit() {
        for seed in 0..3 {
            let golden = RandomCircuitSpec::new(5, 3, 30)
                .latches(3)
                .seed(seed)
                .generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_sequences(&golden, &faulty, 3, 4, seed, 1024);
            if tests.is_empty() {
                continue;
            }
            let diag = sequential_sat_diagnose(&faulty, &tests, 1, 1000);
            assert!(
                diag.solutions.contains(&vec![sites[0].gate]),
                "seed {seed}: real site missing from {:?}",
                diag.solutions
            );
            for sol in &diag.solutions {
                assert!(is_valid_sequential_correction(&faulty, &tests, sol));
            }
        }
    }

    #[test]
    fn unrolled_test_conversion_is_consistent() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 3, 4, 5, 512);
        if tests.is_empty() {
            return;
        }
        let (unrolled_faulty, test_set) = sequence_tests_to_unrolled(&faulty, &tests);
        // Combinational simulation of the unrolled faulty circuit must show
        // the erroneous value (i.e. the test fails on it).
        for t in &test_set {
            let v = simulate(&unrolled_faulty.circuit, &t.vector);
            assert_ne!(v[t.output.index()], t.expected);
        }
    }

    #[test]
    fn empty_candidates_cannot_fix_failing_sequences() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 3, 2, 1, 512);
        if tests.is_empty() {
            return;
        }
        assert!(!is_valid_sequential_correction(&faulty, &tests, &[]));
        assert!(is_valid_sequential_correction(&faulty, &[], &[]));
    }
}
