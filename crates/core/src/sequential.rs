//! Sequential diagnosis: multi-frame tests, engines and validity.
//!
//! The paper notes the SAT-based approach "has also been applied to
//! diagnose sequential errors efficiently" (its reference [4], Ali et
//! al., ICCAD 2004). The construction: unroll the sequential circuit over
//! the test sequence's time frames; a gate-change error affects *every*
//! frame, so the per-gate select line is shared across frames (and across
//! test sequences), exactly like it is shared across test copies in the
//! combinational case.
//!
//! This module is the sequential counterpart of the combinational engine
//! stack:
//!
//! | combinational | sequential |
//! |---------------|------------|
//! | [`Test`](crate::Test) / [`TestSet`](crate::TestSet) | [`SequenceTest`] / [`SequenceTestSet`] |
//! | [`generate_failing_tests`](crate::generate_failing_tests) | [`generate_failing_sequences`] (frame-major packed) |
//! | [`basic_sim_diagnose`](crate::basic_sim_diagnose) | [`sequential_sim_diagnose`] (path tracing across frames) |
//! | [`basic_sat_diagnose`](crate::basic_sat_diagnose) | [`sequential_sat_diagnose`] (time-frame expansion) |
//! | [`is_valid_correction`](crate::is_valid_correction) | [`is_valid_sequential_correction`] / [`SeqValidityOracle`] |
//!
//! Both engines are available behind
//! [`EngineKind::SeqBsim`](crate::EngineKind) /
//! [`EngineKind::SeqBsat`](crate::EngineKind) via
//! [`run_sequential_engine`](crate::run_sequential_engine). The
//! simulation side runs on [`SeqPackedSim`] — 64·W sequences per packed
//! frame sweep, latch state words carried frame-to-frame — and its
//! deterministic work unit is **frames × sequences**; the SAT side's work
//! unit is **SAT queries** (enumeration calls), with
//! [`Budget::conflicts`] threaded to the solver as usual.

use crate::bsim::BsimOptions;
use crate::bsim::BsimResult;
use crate::budget::{Budget, Truncation};
use crate::test_set::TestSet;
use gatediag_cnf::{encode_gate, ClauseSink, Totalizer};
use gatediag_netlist::{unroll, Circuit, GateId, GateKind, GateSet, StateView, Unrolling};
use gatediag_sat::{enumerate_positive_subsets, Lit, SolveResult, Solver, SolverStats, Var};
use gatediag_sim::{pack_rows_into, SeqPackedSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A sequential diagnosis test: an input sequence driving the circuit from
/// a known initial state, with one erroneous primary output at one frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequenceTest {
    /// Initial flip-flop state (in `circuit.latches()` order).
    pub initial_state: Vec<bool>,
    /// Per-frame primary-input vectors (real inputs only, in the order
    /// given by [`real_inputs`]).
    pub vectors: Vec<Vec<bool>>,
    /// Frame at which the erroneous output was observed.
    pub frame: usize,
    /// The erroneous primary output (an output of the original circuit).
    pub output: GateId,
    /// Its correct value.
    pub expected: bool,
}

/// An ordered set of [`SequenceTest`]s — the sequential counterpart of
/// [`TestSet`](crate::TestSet), with the same prefix-reuse conventions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SequenceTestSet {
    tests: Vec<SequenceTest>,
}

impl SequenceTestSet {
    /// Wraps a list of sequence tests.
    pub fn new(tests: Vec<SequenceTest>) -> Self {
        SequenceTestSet { tests }
    }

    /// The tests, in order.
    pub fn tests(&self) -> &[SequenceTest] {
        &self.tests
    }

    /// Number of sequence tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if there are no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Iterates over the tests.
    pub fn iter(&self) -> std::slice::Iter<'_, SequenceTest> {
        self.tests.iter()
    }

    /// The first `min(m, len)` tests as a new set.
    pub fn prefix_at_most(&self, m: usize) -> SequenceTestSet {
        SequenceTestSet {
            tests: self.tests[..m.min(self.tests.len())].to_vec(),
        }
    }

    /// The longest sequence length in the set (0 when empty).
    pub fn max_frames(&self) -> usize {
        self.tests
            .iter()
            .map(|t| t.vectors.len())
            .max()
            .unwrap_or(0)
    }
}

impl FromIterator<SequenceTest> for SequenceTestSet {
    fn from_iter<T: IntoIterator<Item = SequenceTest>>(iter: T) -> Self {
        SequenceTestSet {
            tests: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a SequenceTestSet {
    type Item = &'a SequenceTest;
    type IntoIter = std::slice::Iter<'a, SequenceTest>;

    fn into_iter(self) -> Self::IntoIter {
        self.tests.iter()
    }
}

/// The circuit's *real* primary inputs (excluding flip-flop pseudo-inputs),
/// in `circuit.inputs()` order.
///
/// Computed from the O(n) [`StateView`] lowering — one membership pass
/// instead of the former O(inputs × latches) repeated scan over the latch
/// list.
pub fn real_inputs(circuit: &Circuit) -> Vec<GateId> {
    StateView::new(circuit).real_inputs().to_vec()
}

/// Simulates an input sequence; returns the full value assignment per
/// frame. Re-exported reference semantics of
/// [`gatediag_sim::simulate_sequence`].
///
/// # Panics
///
/// Panics if `initial_state` or any vector has the wrong width.
pub fn simulate_sequence(
    circuit: &Circuit,
    initial_state: &[bool],
    vectors: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    gatediag_sim::simulate_sequence(circuit, initial_state, vectors)
}

/// Generates up to `want` failing sequence tests for a golden/faulty pair
/// by frame-major packed random sequence simulation (both circuits start
/// from the all-zero state; up to 64 sequences per packed batch).
///
/// Each returned test pinpoints the first frame/output where the faulty
/// circuit deviates on a sequence. Deterministic per seed.
pub fn generate_failing_sequences(
    golden: &Circuit,
    faulty: &Circuit,
    frames: usize,
    want: usize,
    seed: u64,
    max_sequences: usize,
) -> SequenceTestSet {
    assert_eq!(
        golden.inputs().len(),
        faulty.inputs().len(),
        "golden/faulty input mismatch"
    );
    let view = StateView::new(golden);
    let reals = view.real_inputs().len();
    let real_outputs = view.real_outputs();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb);
    let mut tests = Vec::new();
    let initial_state = vec![false; view.num_latches()];
    let zero_state = vec![0u64; view.num_latches()];
    let mut golden_sim = SeqPackedSim::new(golden);
    let mut faulty_sim = SeqPackedSim::new(faulty);
    let mut packed = Vec::new();
    let mut generated = 0usize;
    while tests.len() < want && generated < max_sequences {
        let batch = 64.min(max_sequences - generated);
        generated += batch;
        // Drawing order matches the scalar per-sequence generator: for
        // each sequence, frames × real-input bits.
        let seqs: Vec<Vec<Vec<bool>>> = (0..batch)
            .map(|_| {
                (0..frames)
                    .map(|_| (0..reals).map(|_| rng.gen_bool(0.5)).collect())
                    .collect()
            })
            .collect();
        golden_sim.begin(1, &zero_state);
        faulty_sim.begin(1, &zero_state);
        // Per frame, per real output: (golden word, faulty word).
        let mut frame_outs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(frames);
        for frame in 0..frames {
            let rows: Vec<&[bool]> = seqs.iter().map(|s| s[frame].as_slice()).collect();
            pack_rows_into(reals, &rows, &mut packed);
            golden_sim.step(&packed);
            faulty_sim.step(&packed);
            frame_outs.push(
                real_outputs
                    .iter()
                    .map(|&o| (golden_sim.value_words(o)[0], faulty_sim.value_words(o)[0]))
                    .collect(),
            );
        }
        for (lane, seq) in seqs.iter().enumerate() {
            if tests.len() >= want {
                break;
            }
            'frames: for (frame, outs) in frame_outs.iter().enumerate() {
                for (oi, &(g, f)) in outs.iter().enumerate() {
                    let gv = g >> lane & 1 == 1;
                    if gv != (f >> lane & 1 == 1) {
                        tests.push(SequenceTest {
                            initial_state: initial_state.clone(),
                            vectors: seq.clone(),
                            frame,
                            output: real_outputs[oi],
                            expected: gv,
                        });
                        break 'frames;
                    }
                }
            }
        }
    }
    SequenceTestSet::new(tests)
}

/// Sequential `BasicSimDiagnose`: path tracing across time frames.
///
/// All traced tests are simulated frame-major on one [`SeqPackedSim`]
/// (one lane per test); per test, tracing starts at the erroneous output
/// in its failing frame and walks backwards over sensitised paths,
/// crossing frame boundaries through the latches (a latch `q`
/// pseudo-input at frame `f > 0` continues at its `d` gate in frame
/// `f - 1`; frame 0's state is given, hence not correctable). Candidates
/// are *original* gates — a gate sensitised in any frame is implicated
/// once, mirroring the shared select line of the SAT formulation.
///
/// The deterministic work unit is **frames × sequences**: a work budget
/// truncates the test list to the longest prefix whose total frame count
/// fits, exactly like BSIM truncates to a test prefix.
/// [`BsimOptions::parallelism`] is accepted for config uniformity but
/// unused — the single packed pass is already batch-parallel, so results
/// are trivially identical for every worker count.
pub fn sequential_sim_diagnose(
    circuit: &Circuit,
    tests: &SequenceTestSet,
    options: BsimOptions,
) -> BsimResult {
    let view = StateView::new(circuit);
    let mut meter = options.budget.meter();
    // Longest test prefix whose Σ frames fits the work budget.
    let mut traced = 0usize;
    let mut work = 0u64;
    for test in tests.iter() {
        let frames = test.vectors.len() as u64;
        if work + frames > meter.remaining_work() {
            break;
        }
        work += frames;
        traced += 1;
    }
    let work_truncated = traced < tests.len();
    let tests_slice = &tests.tests()[..traced];
    let mut candidate_sets: Vec<GateSet> = Vec::with_capacity(traced);
    let mut mark_counts = vec![0u32; circuit.len()];
    let mut union = GateSet::new(circuit.len());
    let mut deadline_hit = false;
    if traced > 0 {
        let frames = tests_slice
            .iter()
            .map(|t| t.vectors.len())
            .max()
            .unwrap_or(0);
        let words = traced.div_ceil(64).max(1);
        let reals = view.real_inputs().len();
        let initial: Vec<&[bool]> = tests_slice
            .iter()
            .map(|t| t.initial_state.as_slice())
            .collect();
        let mut state = Vec::new();
        pack_rows_into(view.num_latches(), &initial, &mut state);
        let mut sim = SeqPackedSim::new(circuit);
        sim.begin(words, &state);
        // Frame-major pass over every traced sequence at once, snapshotting
        // the full packed value array per frame for the traces below.
        // Sequences shorter than the longest are padded with zero vectors;
        // their padded frames are never read.
        let zero = vec![false; reals];
        let mut packed = Vec::new();
        let mut snapshots: Vec<Vec<u64>> = Vec::with_capacity(frames);
        let mut completed = 0usize;
        // The deadline probe mirrors BSIM's between-batch check: one poll
        // per frame (the opt-in nondeterministic limit).
        let deadline = meter.deadline();
        for frame in 0..frames {
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                // The wall deadline fired mid-pass; trace only the tests
                // whose sequences fit in the completed frames.
                deadline_hit = true;
                break;
            }
            let rows: Vec<&[bool]> = tests_slice
                .iter()
                .map(|t| {
                    t.vectors
                        .get(frame)
                        .map_or(zero.as_slice(), |v| v.as_slice())
                })
                .collect();
            pack_rows_into(reals, &rows, &mut packed);
            sim.step(&packed);
            snapshots.push(sim.values().to_vec());
            completed = frame + 1;
        }
        let w = sim.words_per_gate();
        for (lane, test) in tests_slice.iter().enumerate() {
            if test.vectors.len() > completed {
                // Only possible after a deadline abort.
                break;
            }
            let marked = seq_path_trace(circuit, &view, &snapshots, w, lane, test, options);
            for g in marked.iter() {
                mark_counts[g.index()] += 1;
            }
            union.union_with(&marked);
            candidate_sets.push(marked);
        }
    }
    if deadline_hit {
        meter.note(Truncation::Deadline);
    } else if work_truncated {
        meter.note(Truncation::Work);
    }
    let work = candidate_sets
        .iter()
        .zip(tests_slice)
        .map(|(_, t)| t.vectors.len() as u64)
        .sum();
    BsimResult {
        candidate_sets,
        mark_counts,
        union,
        truncation: meter.truncation(),
        work,
    }
}

/// Backward path trace from `(test.frame, test.output)` over the
/// snapshotted frame values of one sequence lane.
fn seq_path_trace(
    circuit: &Circuit,
    view: &StateView,
    snapshots: &[Vec<u64>],
    words_per_gate: usize,
    lane: usize,
    test: &SequenceTest,
    options: BsimOptions,
) -> GateSet {
    let (word, bit) = (lane / 64, lane % 64);
    let value_at = |frame: usize, g: GateId| -> bool {
        snapshots[frame][g.index() * words_per_gate + word] >> bit & 1 == 1
    };
    let kinds = circuit.kinds();
    let (heads, edges) = circuit.fanin_csr();
    let mut visited: Vec<GateSet> = (0..=test.frame)
        .map(|_| GateSet::new(circuit.len()))
        .collect();
    let mut candidates = GateSet::new(circuit.len());
    let mut worklist: Vec<(usize, GateId)> = vec![(test.frame, test.output)];
    while let Some((frame, id)) = worklist.pop() {
        if !visited[frame].insert(id) {
            continue;
        }
        let kind = kinds[id.index()];
        if kind == GateKind::Input {
            if let Some(slot) = view.latch_slot_of(id) {
                if frame > 0 {
                    // Cross the frame boundary: continue at the latch's
                    // data gate in the previous frame.
                    worklist.push((frame - 1, view.latch_d()[slot]));
                }
                // Frame 0's state is part of the test, not correctable.
            } else if options.include_inputs {
                candidates.insert(id);
            }
            continue;
        }
        if kind.is_source() {
            candidates.insert(id);
            continue;
        }
        candidates.insert(id);
        let fanins = &edges[heads[id.index()] as usize..heads[id.index() + 1] as usize];
        match kind.controlling_value() {
            Some(cv) => {
                let mut controlling = fanins
                    .iter()
                    .copied()
                    .filter(|&f| value_at(frame, f) == cv)
                    .peekable();
                if controlling.peek().is_some() {
                    match options.policy {
                        crate::bsim::MarkPolicy::FirstControlling => {
                            worklist.push((frame, controlling.next().expect("peeked non-empty")));
                        }
                        crate::bsim::MarkPolicy::AllControlling => {
                            worklist.extend(controlling.map(|f| (frame, f)));
                        }
                    }
                } else {
                    worklist.extend(fanins.iter().map(|&f| (frame, f)));
                }
            }
            None => worklist.extend(fanins.iter().map(|&f| (frame, f))),
        }
    }
    candidates
}

/// Options for [`sequential_sat_diagnose`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqBsatOptions {
    /// Stop after this many solutions (`complete = false` if hit).
    pub max_solutions: usize,
    /// Cooperative budget. The deterministic work unit is **SAT queries**
    /// (one per enumerated solution plus one closing query per size
    /// bound); [`Budget::conflicts`] is threaded to the solver and the
    /// opt-in wall deadline rides on the solver's cooperative hook.
    pub budget: Budget,
}

impl Default for SeqBsatOptions {
    fn default() -> Self {
        SeqBsatOptions {
            max_solutions: 1_000_000,
            budget: Budget::default(),
        }
    }
}

/// Result of a sequential SAT-based diagnosis run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqDiagnosis {
    /// Corrections in terms of the *original* circuit's gates, sorted by
    /// (size, lexicographic).
    pub solutions: Vec<Vec<GateId>>,
    /// `false` if enumeration was truncated.
    pub complete: bool,
    /// Why the run stopped early, if it did. Always `Some` exactly when
    /// `complete` is `false`.
    pub truncation: Option<Truncation>,
    /// Solver statistics after the run.
    pub stats: SolverStats,
}

/// Sequential `BasicSATDiagnose`: one unrolled instrumented copy per
/// sequence test, select lines shared per original gate across frames and
/// tests.
///
/// All tests must have the same sequence length.
///
/// # Panics
///
/// Panics if `tests` is empty or sequence lengths differ.
pub fn sequential_sat_diagnose(
    circuit: &Circuit,
    tests: &SequenceTestSet,
    k: usize,
    options: SeqBsatOptions,
) -> SeqDiagnosis {
    assert!(!tests.is_empty(), "need at least one sequence test");
    let frames = tests.tests()[0].vectors.len();
    assert!(
        tests.iter().all(|t| t.vectors.len() == frames),
        "all sequences must have the same length"
    );
    let unrolled = unroll(circuit, frames);
    let view = StateView::new(circuit);
    let reals = view.real_inputs();

    let mut solver = Solver::new();
    // One shared select per original functional gate.
    let sites: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| g.kind() != GateKind::Input)
        .map(|(id, _)| id)
        .collect();
    let selects: Vec<Var> = sites
        .iter()
        .map(|_| ClauseSink::new_var(&mut solver))
        .collect();
    let mut select_of: Vec<Option<Var>> = vec![None; circuit.len()];
    for (&site, &sel) in sites.iter().zip(&selects) {
        select_of[site.index()] = Some(sel);
    }
    // Map unrolled gates back to original gates for select sharing.
    let mut origin: Vec<Option<GateId>> = vec![None; unrolled.circuit.len()];
    for frame in 0..frames {
        for (id, _) in circuit.iter() {
            origin[unrolled.instance(frame, id).index()] = Some(id);
        }
    }

    for test in tests {
        // Encode one copy of the unrolled circuit with guards.
        let vars: Vec<Var> = (0..unrolled.circuit.len())
            .map(|_| ClauseSink::new_var(&mut solver))
            .collect();
        for &uid in unrolled.circuit.topo_order() {
            let gate = unrolled.circuit.gate(uid);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let guard = origin[uid.index()]
                .and_then(|orig| select_of[orig.index()])
                .map(|s| s.positive());
            let fanins: Vec<Lit> = gate
                .fanins()
                .iter()
                .map(|f| vars[f.index()].positive())
                .collect();
            encode_gate(&mut solver, gate.kind(), vars[uid.index()], &fanins, guard);
        }
        // Constrain initial state.
        for (init_pi, &v) in unrolled.initial_state.iter().zip(&test.initial_state) {
            solver.add_clause(&[vars[init_pi.index()].lit(v)]);
        }
        // Constrain per-frame real inputs.
        for (frame, vector) in test.vectors.iter().enumerate() {
            for (&pi, &v) in reals.iter().zip(vector) {
                let inst = unrolled.instance(frame, pi);
                solver.add_clause(&[vars[inst.index()].lit(v)]);
            }
        }
        // Constrain the erroneous output at its frame.
        let out_inst = unrolled.instance(test.frame, test.output);
        solver.add_clause(&[vars[out_inst.index()].lit(test.expected)]);
    }

    let select_lits: Vec<Lit> = selects.iter().map(|v| v.positive()).collect();
    let totalizer = Totalizer::new(&mut solver, &select_lits, k.min(selects.len()));

    // Work unit: SAT queries. Conflicts and the deadline thread straight
    // into the solver, exactly like the combinational BSAT.
    let mut meter = options.budget.meter();
    solver.set_conflict_budget(options.budget.conflicts);
    solver.set_deadline(options.budget.deadline_instant());

    let mut solutions: Vec<Vec<GateId>> = Vec::new();
    let mut truncation: Option<Truncation> = None;
    'sizes: for size in 1..=k.min(selects.len()) {
        let queries = meter.remaining_work();
        if queries < 2 {
            // Cannot afford even one solution plus its closing query.
            meter.note(Truncation::Work);
            break 'sizes;
        }
        let remaining = options.max_solutions.saturating_sub(solutions.len());
        if remaining == 0 {
            truncation = Some(Truncation::Solutions);
            break 'sizes;
        }
        let cap = remaining.min(usize::try_from(queries - 1).unwrap_or(usize::MAX));
        let assumptions: Vec<Lit> = totalizer.at_most(size).into_iter().collect();
        let out = enumerate_positive_subsets(&mut solver, &selects, &assumptions, cap);
        meter.charge(out.solutions.len() as u64 + 1);
        for subset in out.solutions {
            let mut gates: Vec<GateId> = subset
                .iter()
                .map(|v| {
                    let pos = selects.iter().position(|s| s == v).expect("known select");
                    sites[pos]
                })
                .collect();
            gates.sort();
            solutions.push(gates);
        }
        if !out.complete {
            truncation = Some(if out.gave_up {
                if solver.deadline_hit() {
                    Truncation::Deadline
                } else {
                    Truncation::Conflicts
                }
            } else if cap < remaining {
                // The binding cap was the query budget, not max_solutions.
                Truncation::Work
            } else {
                Truncation::Solutions
            });
            break 'sizes;
        }
    }
    let truncation = Truncation::merge(truncation, meter.truncation());
    solutions.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    SeqDiagnosis {
        solutions,
        complete: truncation.is_none(),
        truncation,
        stats: solver.stats(),
    }
}

/// A reusable exact validity oracle for sequential corrections: the
/// time-frame expansion is built once per `(circuit, frames)` pair and
/// shared across [`SeqValidityOracle::is_valid`] calls — the sequential
/// analogue of caching a
/// [`ValidityOracle`](crate::ValidityOracle)'s engine across candidates.
#[derive(Debug)]
pub struct SeqValidityOracle<'c> {
    circuit: &'c Circuit,
    frames: usize,
    unrolled: Unrolling,
    reals: Vec<GateId>,
}

impl<'c> SeqValidityOracle<'c> {
    /// Builds the oracle for sequences of exactly `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(circuit: &'c Circuit, frames: usize) -> SeqValidityOracle<'c> {
        SeqValidityOracle {
            circuit,
            frames,
            unrolled: unroll(circuit, frames),
            reals: real_inputs(circuit),
        }
    }

    /// The number of frames this oracle's unrolling covers.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The (sequential) circuit this oracle validates corrections for.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Exact validity by SAT: the candidate gates are freed in *every*
    /// frame of every test's unrolling; valid iff each test instance is
    /// satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a test's sequence is longer than the oracle's unrolling.
    pub fn is_valid(&self, tests: &SequenceTestSet, candidates: &[GateId]) -> bool {
        let mut freed = vec![false; self.unrolled.circuit.len()];
        for &g in candidates {
            for frame in 0..self.frames {
                freed[self.unrolled.instance(frame, g).index()] = true;
            }
        }
        tests.iter().all(|test| {
            assert!(
                test.vectors.len() <= self.frames,
                "test sequence longer than the oracle's unrolling"
            );
            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..self.unrolled.circuit.len())
                .map(|_| ClauseSink::new_var(&mut solver))
                .collect();
            for &uid in self.unrolled.circuit.topo_order() {
                let gate = self.unrolled.circuit.gate(uid);
                if gate.kind() == GateKind::Input || freed[uid.index()] {
                    continue;
                }
                let fanins: Vec<Lit> = gate
                    .fanins()
                    .iter()
                    .map(|f| vars[f.index()].positive())
                    .collect();
                encode_gate(&mut solver, gate.kind(), vars[uid.index()], &fanins, None);
            }
            for (init_pi, &v) in self.unrolled.initial_state.iter().zip(&test.initial_state) {
                solver.add_clause(&[vars[init_pi.index()].lit(v)]);
            }
            for (frame, vector) in test.vectors.iter().enumerate() {
                for (&pi, &v) in self.reals.iter().zip(vector) {
                    let inst = self.unrolled.instance(frame, pi);
                    solver.add_clause(&[vars[inst.index()].lit(v)]);
                }
            }
            let out_inst = self.unrolled.instance(test.frame, test.output);
            solver.add_clause(&[vars[out_inst.index()].lit(test.expected)]);
            solver.solve(&[]) == SolveResult::Sat
        })
    }
}

/// Exact validity check for sequential corrections by SAT: the candidate
/// gates are freed in *every* frame of every test's unrolling. One-shot
/// convenience over [`SeqValidityOracle`].
pub fn is_valid_sequential_correction(
    circuit: &Circuit,
    tests: &SequenceTestSet,
    candidates: &[GateId],
) -> bool {
    if tests.is_empty() {
        return true;
    }
    SeqValidityOracle::new(circuit, tests.max_frames()).is_valid(tests, candidates)
}

/// Converts sequence tests into combinational [`TestSet`]s over the
/// unrolled circuit (for reusing combinational engines on sequential
/// problems). All tests must share one sequence length; the returned
/// test-set targets the unrolled circuit of [`unroll`].
///
/// Note: combinational diagnosis over the unrolling treats each *frame
/// instance* of a gate as an independent candidate; only the sequential
/// engine above shares selects per original gate.
pub fn sequence_tests_to_unrolled(
    circuit: &Circuit,
    tests: &SequenceTestSet,
) -> (Unrolling, TestSet) {
    assert!(!tests.is_empty(), "need at least one sequence test");
    let frames = tests.tests()[0].vectors.len();
    let unrolled = unroll(circuit, frames);
    let reals = real_inputs(circuit);
    let mut set = Vec::new();
    for test in tests {
        // Assemble the unrolled input vector in unrolled.inputs() order.
        let mut value_of = std::collections::HashMap::new();
        for (init_pi, &v) in unrolled.initial_state.iter().zip(&test.initial_state) {
            value_of.insert(*init_pi, v);
        }
        for (frame, vector) in test.vectors.iter().enumerate() {
            for (&pi, &v) in reals.iter().zip(vector) {
                value_of.insert(unrolled.instance(frame, pi), v);
            }
        }
        let vector: Vec<bool> = unrolled
            .circuit
            .inputs()
            .iter()
            .map(|pi| *value_of.get(pi).expect("all unrolled inputs covered"))
            .collect();
        set.push(crate::test_set::Test {
            vector,
            output: unrolled.instance(test.frame, test.output),
            expected: test.expected,
        });
    }
    (unrolled, TestSet::new(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsim::MarkPolicy;
    use gatediag_netlist::{inject_errors, parse_bench, CircuitBuilder, RandomCircuitSpec};
    use gatediag_sim::simulate;

    fn toggle_circuit() -> Circuit {
        parse_bench("INPUT(en)\nOUTPUT(out)\nq = DFF(d)\nd = XOR(q, en)\nout = BUF(q)\n").unwrap()
    }

    #[test]
    fn sequence_simulation_matches_hand_computation() {
        let c = toggle_circuit();
        let frames = simulate_sequence(&c, &[false], &[vec![true], vec![false], vec![true]]);
        let out = c.find("out").unwrap();
        // q: 0 -> 1 -> 1 -> 0; out shows q before update.
        assert!(!frames[0][out.index()]);
        assert!(frames[1][out.index()]);
        assert!(frames[2][out.index()]);
    }

    #[test]
    fn real_inputs_excludes_latch_outputs_on_many_latch_circuit() {
        // Regression for the O(inputs × latches) scan: a wide sequential
        // circuit with hundreds of latches must still resolve quickly and
        // correctly. 200 real inputs + 200 latches = 400 pseudo-inputs.
        let mut b = CircuitBuilder::new();
        let mut reals = Vec::new();
        for i in 0..200 {
            reals.push(b.input(format!("pi{i}")));
        }
        for (i, &real) in reals.iter().enumerate() {
            let q = b.input(format!("q{i}"));
            let d = b.gate(GateKind::Xor, vec![q, real], format!("d{i}"));
            b.output(d);
            b.latch(q, d);
        }
        let c = b.finish().unwrap();
        assert_eq!(c.inputs().len(), 400);
        let got = real_inputs(&c);
        assert_eq!(got, reals, "real inputs must be exactly the non-latch PIs");
    }

    #[test]
    fn failing_sequences_really_fail() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 8, 3, 512);
        assert!(!tests.is_empty());
        for t in &tests {
            let g = simulate_sequence(&golden, &t.initial_state, &t.vectors);
            let f = simulate_sequence(&faulty, &t.initial_state, &t.vectors);
            assert_eq!(g[t.frame][t.output.index()], t.expected);
            assert_ne!(f[t.frame][t.output.index()], t.expected);
        }
    }

    #[test]
    fn packed_generation_matches_scalar_reference() {
        // The frame-major packed generator must reproduce exactly what the
        // scalar per-sequence generator would find: same sequences (same
        // RNG draw order), same first-deviation frame/output per sequence.
        let golden = RandomCircuitSpec::new(5, 3, 30)
            .latches(3)
            .seed(1)
            .generate();
        let (faulty, _) = inject_errors(&golden, 1, 1);
        let tests = generate_failing_sequences(&golden, &faulty, 3, 64, 1, 256);
        let view = StateView::new(&golden);
        let reals = view.real_inputs().len();
        let mut rng = ChaCha8Rng::seed_from_u64(1 ^ 0x94d0_49bb_1331_11eb);
        let initial = vec![false; golden.latches().len()];
        let mut expect = Vec::new();
        for _ in 0..256 {
            if expect.len() >= 64 {
                break;
            }
            let vectors: Vec<Vec<bool>> = (0..3)
                .map(|_| (0..reals).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let g_frames = simulate_sequence(&golden, &initial, &vectors);
            let f_frames = simulate_sequence(&faulty, &initial, &vectors);
            'frames: for (frame, (g, f)) in g_frames.iter().zip(&f_frames).enumerate() {
                for &o in view.real_outputs() {
                    if g[o.index()] != f[o.index()] {
                        expect.push(SequenceTest {
                            initial_state: initial.clone(),
                            vectors: vectors.clone(),
                            frame,
                            output: o,
                            expected: g[o.index()],
                        });
                        break 'frames;
                    }
                }
            }
        }
        assert_eq!(tests.tests(), expect.as_slice());
    }

    #[test]
    fn sequential_sim_diagnose_implicates_the_error() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 6, 3, 512);
        assert!(!tests.is_empty());
        let result = sequential_sim_diagnose(
            &faulty,
            &tests,
            BsimOptions {
                policy: MarkPolicy::AllControlling,
                ..BsimOptions::default()
            },
        );
        assert_eq!(result.candidate_sets.len(), tests.len());
        for (i, set) in result.candidate_sets.iter().enumerate() {
            assert!(set.contains(d), "error gate missing from C_{i}");
        }
        assert!(result.union.contains(d));
        assert!(result.truncation.is_none());
    }

    #[test]
    fn sequential_sim_diagnose_work_budget_truncates_to_prefix() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 6, 3, 512);
        assert!(tests.len() >= 2);
        // Each test costs 4 frames; a budget of 4 traces exactly one test.
        let budget = Budget {
            work: Some(4),
            ..Budget::default()
        };
        let result = sequential_sim_diagnose(
            &faulty,
            &tests,
            BsimOptions {
                budget,
                ..BsimOptions::default()
            },
        );
        assert_eq!(result.candidate_sets.len(), 1);
        assert_eq!(result.truncation, Some(Truncation::Work));
        assert_eq!(result.work, 4);
        // The traced prefix matches an unbudgeted run's first set.
        let full = sequential_sim_diagnose(&faulty, &tests, BsimOptions::default());
        assert_eq!(result.candidate_sets[0], full.candidate_sets[0]);
    }

    #[test]
    fn sequential_diagnosis_finds_injected_error() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 6, 3, 512);
        assert!(!tests.is_empty());
        let diag = sequential_sat_diagnose(
            &faulty,
            &tests,
            1,
            SeqBsatOptions {
                max_solutions: 1000,
                ..SeqBsatOptions::default()
            },
        );
        assert!(diag.complete);
        assert!(
            diag.solutions.contains(&vec![d]),
            "error gate {d} missing from {:?}",
            diag.solutions
        );
        for sol in &diag.solutions {
            assert!(
                is_valid_sequential_correction(&faulty, &tests, sol),
                "invalid sequential correction {sol:?}"
            );
        }
    }

    #[test]
    fn sequential_diagnosis_on_random_sequential_circuit() {
        for seed in 0..3 {
            let golden = RandomCircuitSpec::new(5, 3, 30)
                .latches(3)
                .seed(seed)
                .generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_sequences(&golden, &faulty, 3, 4, seed, 1024);
            if tests.is_empty() {
                continue;
            }
            let diag = sequential_sat_diagnose(&faulty, &tests, 1, SeqBsatOptions::default());
            assert!(
                diag.solutions.contains(&vec![sites[0].gate]),
                "seed {seed}: real site missing from {:?}",
                diag.solutions
            );
            let oracle = SeqValidityOracle::new(&faulty, tests.max_frames());
            for sol in &diag.solutions {
                assert!(oracle.is_valid(&tests, sol));
            }
        }
    }

    #[test]
    fn sat_work_budget_preempts_as_queries() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 4, 3, 512);
        assert!(!tests.is_empty());
        let diag = sequential_sat_diagnose(
            &faulty,
            &tests,
            1,
            SeqBsatOptions {
                budget: Budget {
                    work: Some(0),
                    ..Budget::default()
                },
                ..SeqBsatOptions::default()
            },
        );
        assert!(!diag.complete);
        assert_eq!(diag.truncation, Some(Truncation::Work));
        assert!(diag.solutions.is_empty());
        // Deterministic: the preempted run reproduces itself.
        let again = sequential_sat_diagnose(
            &faulty,
            &tests,
            1,
            SeqBsatOptions {
                budget: Budget {
                    work: Some(0),
                    ..Budget::default()
                },
                ..SeqBsatOptions::default()
            },
        );
        assert_eq!(diag, again);
    }

    #[test]
    fn sat_solution_cap_reports_solutions_truncation() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 4, 4, 3, 512);
        assert!(!tests.is_empty());
        let full = sequential_sat_diagnose(&faulty, &tests, 2, SeqBsatOptions::default());
        if full.solutions.len() < 2 {
            return;
        }
        let capped = sequential_sat_diagnose(
            &faulty,
            &tests,
            2,
            SeqBsatOptions {
                max_solutions: 1,
                ..SeqBsatOptions::default()
            },
        );
        assert!(!capped.complete);
        assert_eq!(capped.truncation, Some(Truncation::Solutions));
        assert_eq!(capped.solutions.len(), 1);
    }

    #[test]
    fn unrolled_test_conversion_is_consistent() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 3, 4, 5, 512);
        if tests.is_empty() {
            return;
        }
        let (unrolled_faulty, test_set) = sequence_tests_to_unrolled(&faulty, &tests);
        // Combinational simulation of the unrolled faulty circuit must show
        // the erroneous value (i.e. the test fails on it).
        for t in &test_set {
            let v = simulate(&unrolled_faulty.circuit, &t.vector);
            assert_ne!(v[t.output.index()], t.expected);
        }
    }

    #[test]
    fn empty_candidates_cannot_fix_failing_sequences() {
        let golden = toggle_circuit();
        let d = golden.find("d").unwrap();
        let faulty = golden.with_gate_kind(d, gatediag_netlist::GateKind::Xnor);
        let tests = generate_failing_sequences(&golden, &faulty, 3, 2, 1, 512);
        if tests.is_empty() {
            return;
        }
        assert!(!is_valid_sequential_correction(&faulty, &tests, &[]));
        assert!(is_valid_sequential_correction(
            &faulty,
            &SequenceTestSet::default(),
            &[]
        ));
    }

    #[test]
    fn sequence_test_set_prefix_and_frames() {
        let t = |frames: usize| SequenceTest {
            initial_state: vec![],
            vectors: vec![vec![]; frames],
            frame: 0,
            output: GateId::new(0),
            expected: false,
        };
        let set = SequenceTestSet::new(vec![t(2), t(5), t(3)]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.max_frames(), 5);
        assert_eq!(set.prefix_at_most(2).len(), 2);
        assert_eq!(set.prefix_at_most(99).len(), 3);
        assert!(SequenceTestSet::default().is_empty());
        assert_eq!(SequenceTestSet::default().max_frames(), 0);
    }
}
