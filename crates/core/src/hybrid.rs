//! Hybrid diagnosis (paper Sec. 6, "initial steps towards a hybrid
//! technique").
//!
//! The paper's closing observation: BSIM/COV are fast and usually land
//! *near* the real error, while BSAT is exact but slow. Two hybrid levers
//! follow directly:
//!
//! 1. [`hybrid_seeded_bsat`] — run BSIM first and *tune the SAT solver's
//!    decision heuristic* with the path-tracing mark counts: select
//!    variables of frequently marked gates get VSIDS bumps and a
//!    "selected" phase, steering the search towards likely corrections
//!    without changing the solution space.
//! 2. [`repair_correction`] — take an initial (possibly invalid)
//!    correction, e.g. a COV cover, and *turn it into a valid correction*
//!    with SAT: restrict the multiplexer sites to a structural
//!    neighbourhood of the seed and grow the radius until a valid
//!    correction exists.

use crate::bsat::{basic_sat_diagnose, BsatOptions, BsatResult, SiteSelection};
use crate::bsim::{basic_sim_diagnose, BsimOptions};
use crate::test_set::TestSet;
use gatediag_netlist::{Circuit, GateId, GateSet};
use std::collections::VecDeque;

/// BSIM-seeded SAT diagnosis: identical solution space to
/// [`basic_sat_diagnose`], with the decision heuristic primed by path
/// tracing.
///
/// # Examples
///
/// ```
/// use gatediag_core::{hybrid_seeded_bsat, basic_sat_diagnose, BsatOptions};
/// use gatediag_core::generate_failing_tests;
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, _) = inject_errors(&golden, 1, 5);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 5, 4096);
/// let seeded = hybrid_seeded_bsat(&faulty, &tests, 1, BsatOptions::default());
/// let plain = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
/// assert_eq!(seeded.solutions, plain.solutions);
/// ```
pub fn hybrid_seeded_bsat(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    options: BsatOptions,
) -> BsatResult {
    let bsim = basic_sim_diagnose(circuit, tests, BsimOptions::default());
    let max_marks = bsim.mark_counts.iter().copied().max().unwrap_or(0).max(1);
    let hints: Vec<(GateId, f64)> = bsim
        .mark_counts
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0)
        .map(|(i, &m)| (GateId::new(i), f64::from(m) / f64::from(max_marks)))
        .collect();
    basic_sat_diagnose(circuit, tests, k, BsatOptions { hints, ..options })
}

/// Result of a [`repair_correction`] run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RepairOutcome {
    /// The valid corrections found (possibly the seed itself).
    pub solutions: Vec<Vec<GateId>>,
    /// The neighbourhood radius at which a correction was found (0 means
    /// the seed's own gates sufficed).
    pub radius: usize,
    /// Number of multiplexer sites in the final restricted instance.
    pub sites_used: usize,
}

/// Repairs an initial candidate set into valid corrections by SAT over a
/// growing structural neighbourhood.
///
/// Starting from `seed` (e.g. a COV cover that failed validation), the
/// multiplexer sites are the gates within BFS radius `r` of the seed in
/// the undirected gate graph, for `r = 0, 1, …, max_radius`. The first
/// radius whose restricted BSAT instance has solutions (with the given
/// `k`) wins. Returns `None` if even the largest neighbourhood cannot
/// rectify the tests.
pub fn repair_correction(
    circuit: &Circuit,
    tests: &TestSet,
    seed: &[GateId],
    k: usize,
    max_radius: usize,
    options: BsatOptions,
) -> Option<RepairOutcome> {
    // BFS distances from the seed over the undirected gate graph.
    let mut dist = vec![usize::MAX; circuit.len()];
    let mut queue = VecDeque::new();
    for &g in seed {
        dist[g.index()] = 0;
        queue.push_back(g);
    }
    while let Some(id) = queue.pop_front() {
        let d = dist[id.index()];
        let neighbours = circuit
            .gate(id)
            .fanins()
            .iter()
            .copied()
            .chain(circuit.fanouts(id).iter().copied());
        for n in neighbours {
            if dist[n.index()] == usize::MAX {
                dist[n.index()] = d + 1;
                queue.push_back(n);
            }
        }
    }
    for radius in 0..=max_radius {
        let mut sites = GateSet::new(circuit.len());
        for (id, g) in circuit.iter() {
            if !g.kind().is_source() && dist[id.index()] <= radius {
                sites.insert(id);
            }
        }
        let site_list: Vec<GateId> = sites.iter().collect();
        if site_list.is_empty() {
            continue;
        }
        let result = basic_sat_diagnose(
            circuit,
            tests,
            k,
            BsatOptions {
                sites: SiteSelection::Custom(site_list.clone()),
                ..options.clone()
            },
        );
        if !result.solutions.is_empty() {
            return Some(RepairOutcome {
                solutions: result.solutions,
                radius,
                sites_used: site_list.len(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::{sc_diagnose, CovOptions};
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};

    #[test]
    fn seeding_preserves_solution_space() {
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 8192);
            if tests.is_empty() {
                continue;
            }
            let plain = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
            let seeded = hybrid_seeded_bsat(&faulty, &tests, 2, BsatOptions::default());
            assert_eq!(plain.solutions, seeded.solutions, "seed {seed}");
        }
    }

    #[test]
    fn repair_turns_cover_into_valid_correction() {
        for seed in 0..5 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 8192);
            if tests.is_empty() {
                continue;
            }
            let cov = sc_diagnose(&faulty, &tests, 1, CovOptions::default());
            let Some(first_cover) = cov.solutions.first() else {
                continue;
            };
            let outcome =
                repair_correction(&faulty, &tests, first_cover, 2, 6, BsatOptions::default());
            let outcome = outcome.expect("a repair must exist within radius 6");
            for sol in &outcome.solutions {
                assert!(
                    is_valid_correction(&faulty, &tests, sol),
                    "seed {seed}: repair produced invalid {sol:?}"
                );
            }
        }
    }

    #[test]
    fn repair_radius_zero_when_seed_is_valid() {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(1).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 1);
        let tests = generate_failing_tests(&golden, &faulty, 6, 1, 8192);
        if tests.is_empty() {
            return;
        }
        let outcome = repair_correction(
            &faulty,
            &tests,
            &[sites[0].gate],
            1,
            3,
            BsatOptions::default(),
        )
        .expect("seed is already valid");
        assert_eq!(outcome.radius, 0);
        assert!(outcome.solutions.contains(&vec![sites[0].gate]));
    }

    #[test]
    fn repair_gives_none_when_radius_insufficient() {
        // Seed far from the error with radius 0: generally unable to
        // rectify (unless the seed gate dominates the output).
        let golden = RandomCircuitSpec::new(8, 3, 80).seed(3).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 8, 3, 8192);
        if tests.is_empty() {
            return;
        }
        // Find a functional gate that cannot alone rectify.
        let hopeless = faulty.iter().find(|(id, g)| {
            !g.kind().is_source()
                && *id != sites[0].gate
                && !is_valid_correction(&faulty, &tests, &[*id])
        });
        if let Some((id, _)) = hopeless {
            let outcome = repair_correction(&faulty, &tests, &[id], 1, 0, BsatOptions::default());
            assert!(outcome.is_none());
        }
    }
}
