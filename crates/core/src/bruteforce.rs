//! Ground-truth diagnoser: exhaustive subset enumeration plus the validity
//! oracle.
//!
//! Because validity is monotone under supersets, the irredundant valid
//! corrections up to size `k` are exactly the valid sets none of whose kept
//! smaller predecessors they contain. By Lemma 3 this is precisely BSAT's
//! solution space — the integration tests assert that equality.

use crate::test_set::TestSet;
use crate::validity::ValidityOracle;
use gatediag_netlist::{Circuit, GateId};

/// Enumerates all irredundant valid corrections of size ≤ `k` by brute
/// force.
///
/// Exponential in circuit size; intended for cross-checking on small
/// circuits.
///
/// # Panics
///
/// Panics if `k > 4` (combinatorial safety guard).
pub fn brute_force_diagnose(circuit: &Circuit, tests: &TestSet, k: usize) -> Vec<Vec<GateId>> {
    assert!(k <= 4, "brute force limited to k <= 4");
    let functional: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| g.kind() != gatediag_netlist::GateKind::Input)
        .map(|(id, _)| id)
        .collect();
    let mut found: Vec<Vec<GateId>> = Vec::new();
    let mut subset: Vec<GateId> = Vec::new();
    // One auto-dispatching oracle for the whole enumeration: the
    // incremental sim engine's baseline stays primed across all the
    // candidate sets (k ≤ 4 always resolves to the sim fast path).
    let mut oracle = ValidityOracle::new(circuit);
    for size in 1..=k.min(functional.len()) {
        enumerate_subsets(&functional, size, 0, &mut subset, &mut |candidate| {
            // Skip supersets of already-found (smaller) solutions: they are
            // redundant by monotonicity.
            let redundant = found
                .iter()
                .any(|small| small.iter().all(|g| candidate.contains(g)));
            if !redundant && oracle.is_valid(tests, candidate) {
                found.push(candidate.to_vec());
            }
        });
    }
    found.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    found
}

fn enumerate_subsets(
    items: &[GateId],
    size: usize,
    from: usize,
    current: &mut Vec<GateId>,
    visit: &mut impl FnMut(&[GateId]),
) {
    if current.len() == size {
        visit(current);
        return;
    }
    let needed = size - current.len();
    for i in from..=items.len().saturating_sub(needed) {
        current.push(items[i]);
        enumerate_subsets(items, size, i + 1, current, visit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};

    #[test]
    fn finds_injected_single_error() {
        let golden = RandomCircuitSpec::new(5, 2, 20).seed(21).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 21);
        let tests = generate_failing_tests(&golden, &faulty, 6, 21, 8192);
        if tests.is_empty() {
            return;
        }
        let solutions = brute_force_diagnose(&faulty, &tests, 1);
        assert!(solutions.contains(&vec![sites[0].gate]));
    }

    #[test]
    fn no_solution_is_superset_of_another() {
        let golden = RandomCircuitSpec::new(5, 2, 18).seed(4).generate();
        let (faulty, _) = inject_errors(&golden, 2, 4);
        let tests = generate_failing_tests(&golden, &faulty, 6, 4, 8192);
        if tests.is_empty() {
            return;
        }
        let solutions = brute_force_diagnose(&faulty, &tests, 3);
        for a in &solutions {
            for b in &solutions {
                if a != b {
                    assert!(!a.iter().all(|g| b.contains(g)), "{b:?} contains {a:?}");
                }
            }
        }
    }

    #[test]
    fn subset_enumeration_visits_all_combinations() {
        let items: Vec<GateId> = (0..5).map(GateId::new).collect();
        let mut count = 0;
        let mut current = Vec::new();
        enumerate_subsets(&items, 3, 0, &mut current, &mut |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 10); // C(5,3)
    }
}
