//! BSAT: SAT-based diagnosis (paper Fig. 2/3, `BasicSATDiagnose`).
//!
//! One instrumented circuit copy per test (correction multiplexers with
//! select lines shared across copies), inputs and the expected output value
//! constrained per copy, cardinality bound `Σ s_g ≤ k`. Solutions — read
//! off the select lines — are *guaranteed valid corrections* (Lemma 1),
//! and iterating `k = 1..K` with subset blocking yields exactly the
//! corrections with only essential candidates (Lemma 3).
//!
//! The advanced options of Sec. 2.3 are all available: the explicit-mux
//! encoding with `c = 0` pinning, dominator-based two-pass site selection,
//! test-set partitioning, and (for the Sec. 6 hybrid) seeding of the
//! solver's decision heuristic from simulation results.

use crate::budget::{Budget, Truncation};
use crate::test_set::TestSet;
use crate::validity::screen_valid_corrections;
use gatediag_cnf::{
    encode_instrumented_copy, CnfCollector, Instrumentation, MuxEncoding, Totalizer,
};
use gatediag_netlist::{ffr_roots, Circuit, GateId, GateSet};
use gatediag_sat::{enumerate_positive_subsets, Lit, Solver, SolverStats, Var};
use gatediag_sim::{parallel_map_init, Parallelism};
use std::time::{Duration, Instant};

/// Which gates receive correction multiplexers.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum SiteSelection {
    /// Every functional gate (the basic approach).
    #[default]
    AllGates,
    /// Only fan-out-free-region roots — the dominator-based first pass of
    /// the advanced approach; combine with [`two_pass_sat_diagnose`] for
    /// full gate-level resolution.
    Dominators,
    /// An explicit site list (hybrid flows restrict to BSIM candidates).
    Custom(Vec<GateId>),
}

/// Options for [`basic_sat_diagnose`].
#[derive(Clone, PartialEq, Debug)]
pub struct BsatOptions {
    /// Multiplexer encoding (inline guards vs the paper's explicit mux).
    pub encoding: MuxEncoding,
    /// Where to insert multiplexers.
    pub sites: SiteSelection,
    /// Stop after this many solutions (`complete = false` if hit).
    pub max_solutions: usize,
    /// Conflict budget across the whole run (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// VSIDS seed hints `(gate, weight)`: bumps the gate's select variable
    /// and sets its phase to "selected" — the Sec. 6 hybrid lever.
    pub hints: Vec<(GateId, f64)>,
    /// Worker count for the parallelizable SAT-side phases: the per-test
    /// CNF copies of the instance build are *generated* on a worker pool
    /// (each worker Tseitin-encodes whole copies into a pre-assigned
    /// variable block) and replayed into the solver in test order, and
    /// [`partitioned_sat_diagnose`]'s full-test-set validation screens
    /// candidate solutions across workers. The CDCL search itself stays
    /// sequential, so results are bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Cooperative budget. BSAT's deterministic work unit **is** solver
    /// conflicts, so [`Budget::work`] and [`Budget::conflicts`] merge with
    /// the legacy [`BsatOptions::conflict_budget`] into one solver limit
    /// (the smallest wins, bounding each enumeration query); the opt-in
    /// wall deadline threads into the solver's cooperative deadline hook.
    pub budget: Budget,
}

impl Default for BsatOptions {
    fn default() -> Self {
        BsatOptions {
            encoding: MuxEncoding::default(),
            sites: SiteSelection::default(),
            max_solutions: 1_000_000,
            conflict_budget: None,
            hints: Vec::new(),
            parallelism: Parallelism::default(),
            budget: Budget::default(),
        }
    }
}

/// Result of a SAT-based diagnosis run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BsatResult {
    /// All solutions (sets of gates to change), each sorted by gate id,
    /// the list sorted by (size, lexicographic).
    pub solutions: Vec<Vec<GateId>>,
    /// `false` if truncated by `max_solutions` or the budget.
    pub complete: bool,
    /// Why the run stopped early, if it did. Always `Some` when
    /// `complete` is `false`.
    pub truncation: Option<Truncation>,
    /// Time to build the CNF (Table 2 "CNF").
    pub build_time: Duration,
    /// Time until the first solution (Table 2 "One").
    pub first_solution_time: Duration,
    /// Total run time (Table 2 "All").
    pub total_time: Duration,
    /// Solver statistics after the run.
    pub stats: SolverStats,
}

fn resolve_sites(circuit: &Circuit, selection: &SiteSelection) -> Vec<GateId> {
    match selection {
        SiteSelection::AllGates => circuit
            .iter()
            .filter(|(_, g)| g.kind() != gatediag_netlist::GateKind::Input)
            .map(|(id, _)| id)
            .collect(),
        SiteSelection::Dominators => {
            let roots = ffr_roots(circuit);
            let mut set = GateSet::new(circuit.len());
            for (id, g) in circuit.iter() {
                if g.kind() != gatediag_netlist::GateKind::Input {
                    let r = roots[id.index()];
                    if circuit.gate(r).kind() != gatediag_netlist::GateKind::Input {
                        set.insert(r);
                    }
                }
            }
            set.iter().collect()
        }
        SiteSelection::Custom(sites) => sites.clone(),
    }
}

/// `BasicSATDiagnose(I, T, k)` — Fig. 3.
///
/// Builds one instrumented copy per test, then for `i = 1..k` enumerates
/// all solutions under the assumption `Σ s_g ≤ i`, blocking each solution
/// (and thus its supersets) before moving to the next bound.
///
/// # Examples
///
/// ```
/// use gatediag_core::{basic_sat_diagnose, generate_failing_tests, BsatOptions};
/// use gatediag_core::is_valid_correction;
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, _) = inject_errors(&golden, 1, 3);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
/// let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
/// // Lemma 1: every BSAT solution is a valid correction.
/// for sol in &result.solutions {
///     assert!(is_valid_correction(&faulty, &tests, sol));
/// }
/// ```
pub fn basic_sat_diagnose(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    options: BsatOptions,
) -> BsatResult {
    let sites = resolve_sites(circuit, &options.sites);
    let build_start = Instant::now();
    let mut solver = Solver::new();
    let instance = {
        let _encode = gatediag_obs::span("encode");
        build_instance(&mut solver, circuit, tests, &sites, k, &options)
    };
    let build_time = build_start.elapsed();

    let mut solutions: Vec<Vec<GateId>> = Vec::new();
    let mut first_solution_time = Duration::ZERO;
    let mut truncation: Option<Truncation> = None;
    let enum_start = Instant::now();
    // The budget's work unit is conflicts here, so `work`, `conflicts` and
    // the legacy `conflict_budget` knob merge into one solver limit; the
    // wall deadline (if any) rides on the solver's own cooperative hook.
    let budget = options.budget.merge_conflicts(options.conflict_budget);
    let (conflict_limit, conflict_reason) = budget.conflict_limit();
    solver.set_conflict_budget(conflict_limit);
    solver.set_deadline(budget.deadline_instant());
    let limit = k.min(instance.selectors.len());
    let enumerate_span = gatediag_obs::span("enumerate");
    'sizes: for size in 1..=limit {
        let assumptions: Vec<Lit> = instance
            .totalizer
            .as_ref()
            .and_then(|t| t.at_most(size))
            .into_iter()
            .collect();
        let remaining = options.max_solutions.saturating_sub(solutions.len());
        if remaining == 0 {
            truncation = Some(Truncation::Solutions);
            break 'sizes;
        }
        let out =
            enumerate_positive_subsets(&mut solver, &instance.selectors, &assumptions, remaining);
        for subset in out.solutions {
            if solutions.is_empty() {
                first_solution_time = build_time + enum_start.elapsed();
            }
            let mut gates: Vec<GateId> = subset
                .iter()
                .map(|v| instance.gate_of_selector(*v))
                .collect();
            gates.sort();
            solutions.push(gates);
        }
        if !out.complete {
            truncation = Some(if !out.gave_up {
                Truncation::Solutions
            } else if solver.deadline_hit() {
                Truncation::Deadline
            } else {
                conflict_reason
            });
            break 'sizes;
        }
    }
    drop(enumerate_span);
    solutions.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    BsatResult {
        solutions,
        complete: truncation.is_none(),
        truncation,
        build_time,
        first_solution_time,
        total_time: build_time + enum_start.elapsed(),
        stats: solver.stats(),
    }
}

struct Instance {
    selectors: Vec<Var>,
    sites: Vec<GateId>,
    totalizer: Option<Totalizer>,
}

impl Instance {
    fn gate_of_selector(&self, v: Var) -> GateId {
        let pos = self
            .selectors
            .iter()
            .position(|&s| s == v)
            .expect("selector belongs to the instance");
        self.sites[pos]
    }
}

fn build_instance(
    solver: &mut Solver,
    circuit: &Circuit,
    tests: &TestSet,
    sites: &[GateId],
    k: usize,
    options: &BsatOptions,
) -> Instance {
    let inst = Instrumentation::new(solver, circuit, sites);
    // The per-test instrumented copies are independent given the shared
    // select lines, so their Tseitin encoding — the bulk of the paper's
    // Table 2 "CNF" time — shards across workers: every copy allocates an
    // identical variable block, so copy `i`'s block base is known in
    // advance and workers encode into `CnfCollector`s starting there.
    // Replaying the collected clauses into the solver *in test order*
    // reproduces the sequential build's exact clause/variable sequence,
    // so the search (and hence the diagnosis output) is bit-identical for
    // every worker count.
    let work = tests.len().saturating_mul(circuit.len()).saturating_mul(4);
    let workers = options
        .parallelism
        .workers_for(tests.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    if workers <= 1 || tests.len() <= 1 {
        for test in tests {
            let copy = encode_instrumented_copy(solver, circuit, &inst, options.encoding);
            for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
                solver.add_clause(&[copy.vars.lit(pi, v)]);
            }
            solver.add_clause(&[copy.vars.lit(test.output, test.expected)]);
        }
    } else {
        let base = solver.num_vars();
        let encode_copy = |var_base: usize| {
            let mut sink = CnfCollector::starting_at(var_base);
            let copy = encode_instrumented_copy(&mut sink, circuit, &inst, options.encoding);
            let (allocated, clauses) = sink.into_parts();
            (copy, allocated, clauses)
        };
        // Copy 0 pins the per-copy variable demand; the rest fan out.
        let (copy0, vars_per_copy, clauses0) = encode_copy(base);
        let rest = parallel_map_init(
            workers,
            tests.len() - 1,
            || (),
            |(), i| encode_copy(base + (i + 1) * vars_per_copy),
        );
        let mut copies = Vec::with_capacity(tests.len());
        copies.push((copy0, vars_per_copy, clauses0));
        copies.extend(rest);
        for _ in 0..tests.len() * vars_per_copy {
            solver.new_var();
        }
        for ((copy, allocated, clauses), test) in copies.iter().zip(tests) {
            debug_assert_eq!(
                *allocated, vars_per_copy,
                "instrumented copies must allocate identical variable blocks"
            );
            for clause in clauses {
                solver.add_clause(clause);
            }
            for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
                solver.add_clause(&[copy.vars.lit(pi, v)]);
            }
            solver.add_clause(&[copy.vars.lit(test.output, test.expected)]);
        }
    }
    let selectors = inst.select_vars();
    let totalizer = if selectors.is_empty() {
        None
    } else {
        let lits: Vec<Lit> = selectors.iter().map(|v| v.positive()).collect();
        Some(Totalizer::new(solver, &lits, k.min(selectors.len())))
    };
    // Hybrid seeding: prioritise hinted select variables and bias their
    // phase towards "selected".
    for (gate, weight) in &options.hints {
        if let Some(v) = inst.select(*gate) {
            solver.bump_variable(v, *weight);
            solver.set_polarity(v, true);
        }
    }
    Instance {
        selectors,
        sites: inst.sites().to_vec(),
        totalizer,
    }
}

/// The advanced two-pass flow (Sec. 2.3): first diagnose with muxes only at
/// dominators (fan-out-free-region roots), then refine each hit region at
/// gate granularity.
///
/// Returns the union of the refined runs' solutions, deduplicated and
/// sorted. The refined pass instruments all gates of every region whose
/// root occurred in a first-pass solution.
pub fn two_pass_sat_diagnose(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    options: BsatOptions,
) -> BsatResult {
    let first = basic_sat_diagnose(
        circuit,
        tests,
        k,
        BsatOptions {
            sites: SiteSelection::Dominators,
            ..options.clone()
        },
    );
    // Collect regions to refine.
    let roots = ffr_roots(circuit);
    let mut hit_roots = GateSet::new(circuit.len());
    for sol in &first.solutions {
        for &g in sol {
            hit_roots.insert(g);
        }
    }
    let mut refined_sites = GateSet::new(circuit.len());
    for (id, g) in circuit.iter() {
        if !g.kind().is_source() && hit_roots.contains(roots[id.index()]) {
            refined_sites.insert(id);
        }
    }
    let sites: Vec<GateId> = refined_sites.iter().collect();
    let mut second = basic_sat_diagnose(
        circuit,
        tests,
        k,
        BsatOptions {
            sites: SiteSelection::Custom(sites),
            ..options
        },
    );
    second.build_time += first.build_time;
    second.total_time += first.total_time;
    // Phases in run order: the dominator pass ran first, so its reason
    // wins ties (see `Truncation::merge`).
    second.truncation = Truncation::merge(first.truncation, second.truncation);
    second.complete = second.truncation.is_none();
    second
}

/// When diagnosis with bound `k` is infeasible, explains why: returns a
/// subset of test indices that *jointly* admit no correction of size ≤ k
/// (an unsat core over the tests; not necessarily minimal).
///
/// Returns `None` when the tests are diagnosable with bound `k` (a
/// correction exists). Useful when `k` was under-estimated: the core
/// pinpoints the tests proving that more (or different) gates must change.
pub fn conflicting_test_core(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    options: &BsatOptions,
) -> Option<Vec<usize>> {
    let sites = resolve_sites(circuit, &options.sites);
    let mut solver = Solver::new();
    let inst = Instrumentation::new(&mut solver, circuit, &sites);
    // One activation literal per test; all test constraints are guarded so
    // the solver can tell us which subset conflicts.
    let mut activators = Vec::with_capacity(tests.len());
    for test in tests {
        let a = gatediag_cnf::ClauseSink::new_var(&mut solver);
        let copy = encode_instrumented_copy(&mut solver, circuit, &inst, options.encoding);
        for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
            solver.add_clause(&[a.negative(), copy.vars.lit(pi, v)]);
        }
        solver.add_clause(&[a.negative(), copy.vars.lit(test.output, test.expected)]);
        activators.push(a);
    }
    let selectors = inst.select_vars();
    let mut assumptions: Vec<Lit> = activators.iter().map(|a| a.positive()).collect();
    if !selectors.is_empty() {
        let lits: Vec<Lit> = selectors.iter().map(|v| v.positive()).collect();
        let totalizer = Totalizer::new(&mut solver, &lits, k.min(selectors.len()));
        assumptions.extend(totalizer.at_most(k.min(selectors.len())));
    }
    match solver.solve(&assumptions) {
        gatediag_sat::SolveResult::Sat => None,
        _ => {
            let failed = solver.failed_assumptions();
            let core: Vec<usize> = activators
                .iter()
                .enumerate()
                .filter(|(_, a)| failed.contains(&a.positive()))
                .map(|(i, _)| i)
                .collect();
            Some(core)
        }
    }
}

/// The advanced test-set partitioning heuristic (Sec. 2.3): diagnose with a
/// first chunk of `partition_size` tests (a much smaller SAT instance),
/// then keep only candidates that an exact validity check (auto-dispatched
/// between the sim and SAT oracles, screened in parallel per
/// [`BsatOptions::parallelism`]) confirms against the *full* test-set.
///
/// Sound (every returned solution is a valid correction for all tests) but
/// not complete: a correction that is not irredundant on the first chunk
/// can be missed. The speed/completeness trade-off is measured in the
/// ablation benchmarks.
pub fn partitioned_sat_diagnose(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    partition_size: usize,
    options: BsatOptions,
) -> BsatResult {
    assert!(partition_size > 0, "partition size must be positive");
    if tests.len() <= partition_size {
        return basic_sat_diagnose(circuit, tests, k, options);
    }
    let chunk = tests.prefix_at_most(partition_size);
    let parallelism = options.parallelism;
    let mut result = basic_sat_diagnose(circuit, &chunk, k, options);
    let verify_start = Instant::now();
    // Full-test-set validation of the chunk's candidates: independent per
    // candidate set, screened across workers with the auto-dispatching
    // oracle (verdicts are exact, so the retained list is bit-identical
    // for every worker count).
    let verdicts = screen_valid_corrections(circuit, tests, &result.solutions, parallelism);
    let mut keep = verdicts.iter();
    result
        .solutions
        .retain(|_| *keep.next().expect("verdict per solution"));
    result.total_time += verify_start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    fn setup(seed: u64, p: usize, m: usize) -> (Circuit, Circuit, TestSet) {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
        let (faulty, _) = inject_errors(&golden, p, seed);
        let tests = generate_failing_tests(&golden, &faulty, m, seed, 8192);
        (golden, faulty, tests)
    }

    #[test]
    fn solutions_are_valid_corrections_lemma1() {
        for seed in 0..4 {
            let (_, faulty, tests) = setup(seed, 1, 6);
            if tests.is_empty() {
                continue;
            }
            let result = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
            assert!(result.complete);
            assert!(!result.solutions.is_empty(), "error must be diagnosable");
            for sol in &result.solutions {
                assert!(
                    is_valid_correction(&faulty, &tests, sol),
                    "seed {seed}: BSAT returned invalid correction {sol:?}"
                );
            }
        }
    }

    #[test]
    fn real_error_site_appears_in_some_solution() {
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 8192);
            if tests.is_empty() {
                continue;
            }
            let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
            // The singleton {error site} is a valid size-1 correction, so it
            // must be enumerated at k = 1.
            assert!(
                result.solutions.contains(&vec![sites[0].gate]),
                "seed {seed}: error site {} not among {:?}",
                sites[0].gate,
                result.solutions
            );
        }
    }

    #[test]
    fn encodings_agree() {
        let (_, faulty, tests) = setup(7, 2, 6);
        if tests.is_empty() {
            return;
        }
        let base = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        for encoding in [
            MuxEncoding::ExplicitMux {
                force_c_zero: false,
            },
            MuxEncoding::ExplicitMux { force_c_zero: true },
        ] {
            let other = basic_sat_diagnose(
                &faulty,
                &tests,
                2,
                BsatOptions {
                    encoding,
                    ..BsatOptions::default()
                },
            );
            assert_eq!(
                base.solutions, other.solutions,
                "{encoding:?} changed the solution space"
            );
        }
    }

    #[test]
    fn solutions_contain_only_essential_candidates_lemma3() {
        let (_, faulty, tests) = setup(3, 2, 8);
        if tests.is_empty() {
            return;
        }
        let result = basic_sat_diagnose(&faulty, &tests, 3, BsatOptions::default());
        for sol in &result.solutions {
            for drop in sol {
                let without: Vec<GateId> = sol.iter().copied().filter(|g| g != drop).collect();
                assert!(
                    !is_valid_correction(&faulty, &tests, &without),
                    "{sol:?} minus {drop} is still valid — candidate not essential"
                );
            }
        }
    }

    #[test]
    fn hints_do_not_change_solutions() {
        let (_, faulty, tests) = setup(9, 1, 6);
        if tests.is_empty() {
            return;
        }
        let plain = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        let hinted_gates: Vec<(GateId, f64)> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| (id, 10.0))
            .collect();
        let hinted = basic_sat_diagnose(
            &faulty,
            &tests,
            2,
            BsatOptions {
                hints: hinted_gates,
                ..BsatOptions::default()
            },
        );
        assert_eq!(plain.solutions, hinted.solutions);
    }

    #[test]
    fn dominator_sites_are_subset_of_all_gates() {
        let c = c17();
        let all = resolve_sites(&c, &SiteSelection::AllGates);
        let dom = resolve_sites(&c, &SiteSelection::Dominators);
        assert!(!dom.is_empty());
        assert!(dom.len() <= all.len());
        for d in &dom {
            assert!(all.contains(d));
        }
    }

    #[test]
    fn two_pass_finds_valid_corrections() {
        let (_, faulty, tests) = setup(5, 1, 6);
        if tests.is_empty() {
            return;
        }
        let refined = two_pass_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
        assert!(!refined.solutions.is_empty());
        for sol in &refined.solutions {
            assert!(is_valid_correction(&faulty, &tests, sol));
        }
    }

    #[test]
    fn partitioning_is_sound() {
        let (_, faulty, tests) = setup(11, 1, 8);
        if tests.len() < 8 {
            return;
        }
        let part = partitioned_sat_diagnose(&faulty, &tests, 2, 4, BsatOptions::default());
        for sol in &part.solutions {
            assert!(
                is_valid_correction(&faulty, &tests, sol),
                "partitioned diagnosis returned invalid {sol:?}"
            );
        }
    }

    #[test]
    fn max_solutions_truncates() {
        let (_, faulty, tests) = setup(2, 2, 6);
        if tests.is_empty() {
            return;
        }
        let result = basic_sat_diagnose(
            &faulty,
            &tests,
            3,
            BsatOptions {
                max_solutions: 1,
                ..BsatOptions::default()
            },
        );
        assert_eq!(result.solutions.len(), 1);
        assert!(!result.complete);
    }

    #[test]
    fn conflicting_core_is_none_when_diagnosable() {
        let (_, faulty, tests) = setup(4, 1, 6);
        if tests.is_empty() {
            return;
        }
        // k = 1 with a single injected error: always diagnosable.
        assert_eq!(
            conflicting_test_core(&faulty, &tests, 1, &BsatOptions::default()),
            None
        );
    }

    #[test]
    fn conflicting_core_explains_infeasibility() {
        // Find a 2-error workload where no single-gate correction exists.
        for seed in 0..30 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 2, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 8192);
            if tests.len() < 2 {
                continue;
            }
            let k1 = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
            if !k1.solutions.is_empty() {
                continue; // diagnosable at k=1, try another seed
            }
            let core = conflicting_test_core(&faulty, &tests, 1, &BsatOptions::default())
                .expect("infeasible at k=1 must yield a core");
            assert!(core.len() >= 2, "a single test is always rectifiable");
            // The core tests alone are already infeasible at k = 1.
            let core_tests: TestSet = core.iter().map(|&i| tests.tests()[i].clone()).collect();
            let sub = basic_sat_diagnose(&faulty, &core_tests, 1, BsatOptions::default());
            assert!(
                sub.solutions.is_empty(),
                "seed {seed}: core {core:?} is not actually conflicting"
            );
            return; // one good case suffices
        }
    }

    #[test]
    fn timing_fields_are_coherent() {
        let (_, faulty, tests) = setup(1, 1, 4);
        if tests.is_empty() {
            return;
        }
        let r = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
        assert!(r.build_time <= r.total_time);
        if !r.solutions.is_empty() {
            assert!(r.first_solution_time <= r.total_time);
        }
    }
}
