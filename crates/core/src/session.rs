//! One diagnosis front door for every caller, plus the warm per-circuit
//! session the service layer caches.
//!
//! Before this module, the one-shot CLI, the campaign runner and (now)
//! the daemon each assembled their own [`EngineConfig`] and their own
//! inject → generate-tests → run-engine sequence, and the three paths
//! drifted (different `max_test_vectors`, different frame defaults,
//! different validation). The shared pieces live here:
//!
//! * [`DiagnoseRequest`] — the full identity of one diagnosis run, with
//!   [`DiagnoseRequest::validated`] as the single validation/
//!   normalisation gate (frames/seq-len clamps, engine/axis
//!   normalisation, test-gen policy checks) and
//!   [`DiagnoseRequest::engine_config`] as the single `EngineConfig`
//!   builder;
//! * [`run_diagnose`] — the inject → tests → engine pipeline itself,
//!   instrumented with exactly the `inject`/`tests`/`engine` obs spans
//!   the campaign runner always charged;
//! * [`CircuitSession`] — a circuit plus a memo of completed runs,
//!   keyed by the request. Engine runs are pure functions of
//!   `(circuit, request)` (pinned by the campaign drift tests), so a
//!   repeated request is answered from the memo without touching the
//!   netlist, the simulator or the CNF encoder — the "warm hit" the
//!   serve layer's registry is built on. Warm hits are observable:
//!   they charge `session.warm_hits` and *nothing else* (zero
//!   `cnf.gates_encoded`, zero `netlist.builds`).
//!
//! Requests with a wall-clock deadline or an active chaos policy are
//! never cached: their outcomes depend on timing or deliberate
//! perturbation, not just the request.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use gatediag_netlist::{try_inject_faults, write_bench, Circuit, Fault, FaultModel};
use gatediag_sim::Parallelism;

use crate::budget::Budget;
use crate::chaos::ChaosPolicy;
use crate::engine::{run_engine, run_sequential_engine, EngineConfig, EngineKind, EngineRun};
use crate::sequential::generate_failing_sequences;
use crate::test_set::generate_failing_tests;
use crate::testgen::TestGenPolicy;

/// Hard cap on a campaign/CLI time-frame count: unrolling is linear in
/// frames per instance, so an absurd `--frames` is clamped here rather
/// than allowed to allocate without bound (the same hardening posture as
/// the `GATEDIAG_WORKERS` / `MAX_ENV_WORKERS` clamp in `gatediag-sim`).
pub const MAX_FRAMES: usize = 256;

/// Hard cap on the failing-sequence count per sequential instance.
pub const MAX_SEQ_LEN: usize = 1024;

/// Validates one `--frames` value: zero frames is meaningless (there is
/// no frame to diagnose in) and rejected; values above [`MAX_FRAMES`]
/// clamp down to it.
///
/// # Errors
///
/// Returns a CLI-ready message when `frames == 0`.
pub fn validate_frames(frames: usize) -> Result<usize, String> {
    if frames == 0 {
        return Err("--frames must be at least 1".to_string());
    }
    Ok(frames.min(MAX_FRAMES))
}

/// Validates one `--seq-len` value: zero sequences would make every
/// sequential instance an empty no-op and is rejected; values above
/// [`MAX_SEQ_LEN`] clamp down to it.
///
/// # Errors
///
/// Returns a CLI-ready message when `seq_len == 0`.
pub fn validate_seq_len(seq_len: usize) -> Result<usize, String> {
    if seq_len == 0 {
        return Err("--seq-len must be at least 1".to_string());
    }
    Ok(seq_len.min(MAX_SEQ_LEN))
}

/// The full identity of one diagnosis run against one golden circuit:
/// what to inject, which failing tests to collect, which engine to run
/// and under which limits. Two equal requests against the same circuit
/// produce identical outcomes (engine runs are pure), which is exactly
/// what makes the request usable as a cache key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DiagnoseRequest {
    /// The engine to run.
    pub engine: EngineKind,
    /// The fault model to inject.
    pub fault_model: FaultModel,
    /// Number of injected errors.
    pub p: usize,
    /// Seed for injection and test generation.
    pub seed: u64,
    /// Failing tests (combinational) or failing sequences (sequential)
    /// to collect.
    pub tests: usize,
    /// Cap on the random vectors tried while collecting failing tests.
    pub max_test_vectors: usize,
    /// Correction cardinality; `None` means "k = p".
    pub k: Option<usize>,
    /// Unrolling depth; `Some` selects the sequential pipeline.
    pub frames: Option<usize>,
    /// Stimulus length per failing sequence (sequential only).
    pub seq_len: Option<usize>,
    /// Cap on enumerated solutions.
    pub max_solutions: usize,
    /// SAT conflict budget, `None` = unlimited.
    pub conflict_budget: Option<u64>,
    /// Deterministic work budget, `None` = unlimited.
    pub work_budget: Option<u64>,
    /// Wall-clock deadline; `Some` makes the run nondeterministic and
    /// therefore uncacheable.
    pub deadline_ms: Option<u64>,
    /// Discriminating-test generation rounds; `None` = phase off.
    pub test_gen_rounds: Option<usize>,
}

impl Default for DiagnoseRequest {
    /// The campaign defaults: 8 tests, `1 << 15` vector cap, 10 000
    /// solutions, 5 M conflicts — one error at seed 1 through the auto
    /// engine.
    fn default() -> Self {
        DiagnoseRequest {
            engine: EngineKind::Auto,
            fault_model: FaultModel::GateChange,
            p: 1,
            seed: 1,
            tests: 8,
            max_test_vectors: 1 << 15,
            k: None,
            frames: None,
            seq_len: None,
            max_solutions: 10_000,
            conflict_budget: Some(5_000_000),
            work_budget: None,
            deadline_ms: None,
            test_gen_rounds: None,
        }
    }
}

impl DiagnoseRequest {
    /// Validates and normalises the request — the single gate all three
    /// front doors (CLI, campaign, daemon) pass through, so they cannot
    /// drift on clamping or policy rules:
    ///
    /// * `p`, `tests`, `k`, `max_solutions`, `test_gen_rounds` must be
    ///   positive where present;
    /// * a sequential axis (`frames`/`seq_len`) maps combinational
    ///   engines onto their sequential variants (`bsim` → `seq-bsim`,
    ///   `bsat` → `seq-bsat`) and rejects engines without one;
    /// * a sequential engine without explicit axes gets the campaign
    ///   defaults (3 frames, length-4 sequences); axes are clamped via
    ///   [`validate_frames`] / [`validate_seq_len`];
    /// * discriminating-test generation is combinational-only and
    ///   rejected on sequential requests.
    ///
    /// # Errors
    ///
    /// Returns a CLI-ready message describing the first violated rule.
    pub fn validated(&self) -> Result<DiagnoseRequest, String> {
        let mut req = self.clone();
        if req.p == 0 {
            return Err("error count p must be at least 1".to_string());
        }
        if req.tests == 0 {
            return Err("--tests must be at least 1".to_string());
        }
        if req.max_test_vectors == 0 {
            return Err("--max-test-vectors must be at least 1".to_string());
        }
        if req.k == Some(0) {
            return Err("--k must be at least 1".to_string());
        }
        if req.max_solutions == 0 {
            return Err("--max-solutions must be at least 1".to_string());
        }
        if req.test_gen_rounds == Some(0) {
            return Err("--test-gen-rounds must be at least 1".to_string());
        }
        let sequential_axes = req.frames.is_some() || req.seq_len.is_some();
        if req.engine.is_sequential() || sequential_axes {
            req.engine = match req.engine {
                EngineKind::Bsim => EngineKind::SeqBsim,
                EngineKind::Bsat => EngineKind::SeqBsat,
                seq if seq.is_sequential() => seq,
                other => {
                    return Err(format!(
                        "engine `{}` has no sequential variant; use bsim or bsat with --frames",
                        other.name()
                    ))
                }
            };
            req.frames = Some(validate_frames(req.frames.unwrap_or(3))?);
            req.seq_len = Some(validate_seq_len(req.seq_len.unwrap_or(4))?);
            if req.test_gen_rounds.is_some() {
                return Err(
                    "discriminating-test generation is combinational-only (drop --test-gen or --frames)"
                        .to_string(),
                );
            }
        }
        Ok(req)
    }

    /// Builds the one [`EngineConfig`] every front door uses: `k`
    /// defaults to `p`, the budget carries the work/deadline limits, and
    /// the test-generation phase gets the golden reference exactly when
    /// it is enabled.
    pub fn engine_config(
        &self,
        parallelism: Parallelism,
        chaos: ChaosPolicy,
        golden: &Circuit,
    ) -> EngineConfig {
        EngineConfig {
            k: self.k.unwrap_or(self.p),
            max_solutions: self.max_solutions,
            conflict_budget: self.conflict_budget,
            budget: Budget {
                work: self.work_budget,
                deadline_ms: self.deadline_ms,
                ..Budget::default()
            },
            parallelism,
            chaos,
            test_gen: self.test_gen_rounds.map(|rounds| TestGenPolicy {
                rounds,
                ..TestGenPolicy::default()
            }),
            reference: self.test_gen_rounds.is_some().then(|| golden.clone()),
            ..EngineConfig::default()
        }
    }
}

/// How a diagnosis run ended, before any caller-specific mapping. The
/// tokens mirror the campaign's `InstanceStatus` (and the serve
/// protocol's response statuses).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DiagnoseStatus {
    /// The engine ran to its configured limits.
    Ok,
    /// The fault model could not inject `p` errors into this circuit.
    NotInjectable,
    /// Injection succeeded but no failing test was found.
    NoFailingTests,
    /// A work/deadline/conflict budget preempted the run.
    Preempted,
}

impl DiagnoseStatus {
    /// Stable token, identical to the campaign report spelling.
    pub fn name(self) -> &'static str {
        match self {
            DiagnoseStatus::Ok => "ok",
            DiagnoseStatus::NotInjectable => "not-injectable",
            DiagnoseStatus::NoFailingTests => "no-failing-tests",
            DiagnoseStatus::Preempted => "preempted",
        }
    }
}

/// Everything [`run_diagnose`] produced: the injected faults, the
/// faulty circuit (for scoring and rendering), the collected test count
/// and — when the pipeline reached the engine — the [`EngineRun`].
#[derive(Clone, Debug)]
pub struct DiagnoseOutcome {
    /// The injected faults; empty when injection failed.
    pub faults: Vec<Fault>,
    /// The faulty circuit; `None` when injection failed.
    pub faulty: Option<Circuit>,
    /// Failing tests (or sequences) collected.
    pub tests: usize,
    /// How the run ended.
    pub status: DiagnoseStatus,
    /// The engine result; `None` when the pipeline stopped early.
    pub run: Option<EngineRun>,
}

/// Runs the full diagnosis pipeline — inject, collect failing tests,
/// run the engine — for one request against one golden circuit. Pure in
/// `(golden, request)` for an inactive chaos policy and an unlimited
/// deadline; the obs spans (`inject`, `tests`, `engine`) are exactly
/// the ones the campaign runner has always charged, so campaign traces
/// are unchanged by the refactor.
///
/// The request is used as given: call [`DiagnoseRequest::validated`]
/// first (the session does this for you).
pub fn run_diagnose(
    golden: &Circuit,
    request: &DiagnoseRequest,
    parallelism: Parallelism,
    chaos: ChaosPolicy,
) -> DiagnoseOutcome {
    let injected = {
        let _inject = gatediag_obs::span("inject");
        try_inject_faults(golden, request.fault_model, request.p, request.seed)
    };
    let Some((faulty, faults)) = injected else {
        return DiagnoseOutcome {
            faults: Vec::new(),
            faulty: None,
            tests: 0,
            status: DiagnoseStatus::NotInjectable,
            run: None,
        };
    };
    let config = request.engine_config(parallelism, chaos, golden);
    let (tests_len, run) = match (request.frames, request.seq_len) {
        (Some(frames), Some(seq_len)) => {
            let tests = {
                let _tests = gatediag_obs::span("tests");
                generate_failing_sequences(
                    golden,
                    &faulty,
                    frames,
                    seq_len,
                    request.seed,
                    request.max_test_vectors,
                )
            };
            if tests.is_empty() {
                return DiagnoseOutcome {
                    faults,
                    faulty: Some(faulty),
                    tests: 0,
                    status: DiagnoseStatus::NoFailingTests,
                    run: None,
                };
            }
            let _engine = gatediag_obs::span("engine");
            let run = run_sequential_engine(request.engine, &faulty, &tests, &config);
            (tests.len(), run)
        }
        _ => {
            let tests = {
                let _tests = gatediag_obs::span("tests");
                generate_failing_tests(
                    golden,
                    &faulty,
                    request.tests,
                    request.seed,
                    request.max_test_vectors,
                )
            };
            if tests.is_empty() {
                return DiagnoseOutcome {
                    faults,
                    faulty: Some(faulty),
                    tests: 0,
                    status: DiagnoseStatus::NoFailingTests,
                    run: None,
                };
            }
            let _engine = gatediag_obs::span("engine");
            let run = run_engine(request.engine, &faulty, &tests, &config);
            (tests.len(), run)
        }
    };
    let status = if run.truncation.is_some_and(|t| t.is_preemption()) {
        DiagnoseStatus::Preempted
    } else {
        DiagnoseStatus::Ok
    };
    DiagnoseOutcome {
        faults,
        faulty: Some(faulty),
        tests: tests_len,
        status,
        run: Some(run),
    }
}

/// Content hash of a circuit: FNV-1a 64 over its canonical `.bench`
/// text ([`write_bench`]). Two circuits with the same functional
/// netlist and names hash equally however they were constructed
/// (programmatic builder, `.bench` parse, generator), which is what
/// lets the serve registry recognise "the same circuit" across clients.
pub fn circuit_content_hash(circuit: &Circuit) -> u64 {
    let text = write_bench(circuit);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in text.lines() {
        // `write_bench` leads with a `# <name>` comment; the hash keys
        // the functional netlist only, so the same circuit registered
        // under two display names is still one registry entry.
        if line.starts_with('#') {
            continue;
        }
        for &b in line.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ u64::from(b'\n')).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-session memo state, behind one mutex.
struct SessionState {
    outcomes: HashMap<DiagnoseRequest, Arc<DiagnoseOutcome>>,
    warm_hits: u64,
    cold_runs: u64,
}

/// A golden circuit kept warm across requests: the circuit itself plus
/// a memo of completed [`DiagnoseOutcome`]s keyed by the validated
/// request. This is the unit the serve registry caches — constructing a
/// session costs one content hash; answering a repeated request costs a
/// map lookup and charges only the `session.warm_hits` obs counter.
///
/// The session is `Sync`: the memo lock is held only for lookups and
/// inserts, never across an engine run, so concurrent requests against
/// one circuit proceed in parallel (two concurrent *identical* cold
/// requests may both run the engine; the runs are pure, so first-insert
/// wins and both callers see equal outcomes).
#[derive(Debug)]
pub struct CircuitSession {
    name: String,
    golden: Circuit,
    hash: u64,
    state: Mutex<SessionState>,
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("outcomes", &self.outcomes.len())
            .field("warm_hits", &self.warm_hits)
            .field("cold_runs", &self.cold_runs)
            .finish()
    }
}

impl CircuitSession {
    /// Wraps a golden circuit into a warm session, hashing its content
    /// eagerly so registry keying never re-renders the netlist.
    pub fn new(name: impl Into<String>, golden: Circuit) -> CircuitSession {
        let hash = circuit_content_hash(&golden);
        CircuitSession {
            name: name.into(),
            golden,
            hash,
            state: Mutex::new(SessionState {
                outcomes: HashMap::new(),
                warm_hits: 0,
                cold_runs: 0,
            }),
        }
    }

    /// The display name the session was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The golden circuit.
    pub fn golden(&self) -> &Circuit {
        &self.golden
    }

    /// The canonical content hash (see [`circuit_content_hash`]).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Requests answered from the memo so far.
    pub fn warm_hits(&self) -> u64 {
        self.lock().warm_hits
    }

    /// Requests that ran the full pipeline so far.
    pub fn cold_runs(&self) -> u64 {
        self.lock().cold_runs
    }

    /// Distinct outcomes currently memoised.
    pub fn cached_outcomes(&self) -> usize {
        self.lock().outcomes.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionState> {
        // A panicking engine run never holds this lock (runs happen
        // outside it), but a poisoned memo would still only contain
        // completed outcomes — recover rather than wedge the session.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Answers a request, from the memo when possible. Returns the
    /// outcome and whether it was a warm hit.
    ///
    /// Runs with a wall-clock deadline or an active chaos policy bypass
    /// the memo in both directions: their outcomes are functions of
    /// timing/perturbation, not just the request, and caching them
    /// would leak one caller's scheduling luck into another's answer.
    ///
    /// # Errors
    ///
    /// Returns the [`DiagnoseRequest::validated`] message for an
    /// invalid request; nothing is run or cached in that case.
    pub fn diagnose(
        &self,
        request: &DiagnoseRequest,
        parallelism: Parallelism,
        chaos: ChaosPolicy,
    ) -> Result<(Arc<DiagnoseOutcome>, bool), String> {
        let request = request.validated()?;
        let cacheable = request.deadline_ms.is_none() && !chaos.is_active();
        if cacheable {
            let mut state = self.lock();
            if let Some(hit) = state.outcomes.get(&request) {
                let hit = Arc::clone(hit);
                state.warm_hits += 1;
                drop(state);
                gatediag_obs::count("session.warm_hits", 1);
                return Ok((hit, true));
            }
        }
        let outcome = Arc::new(run_diagnose(&self.golden, &request, parallelism, chaos));
        let mut state = self.lock();
        state.cold_runs += 1;
        gatediag_obs::count("session.cold_runs", 1);
        if cacheable {
            state
                .outcomes
                .entry(request)
                .or_insert_with(|| Arc::clone(&outcome));
        }
        Ok((outcome, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::c17;

    #[test]
    fn frames_and_seq_len_validation_rejects_zero_and_clamps() {
        assert!(validate_frames(0).is_err());
        assert_eq!(validate_frames(1), Ok(1));
        assert_eq!(validate_frames(MAX_FRAMES), Ok(MAX_FRAMES));
        assert_eq!(validate_frames(usize::MAX), Ok(MAX_FRAMES));
        assert!(validate_seq_len(0).is_err());
        assert_eq!(validate_seq_len(8), Ok(8));
        assert_eq!(validate_seq_len(1 << 40), Ok(MAX_SEQ_LEN));
    }

    #[test]
    fn validation_normalises_sequential_requests() {
        // Combinational engine + frames → the sequential variant, with
        // defaulted and clamped axes.
        let req = DiagnoseRequest {
            engine: EngineKind::Bsim,
            frames: Some(1 << 30),
            ..DiagnoseRequest::default()
        };
        let v = req.validated().unwrap();
        assert_eq!(v.engine, EngineKind::SeqBsim);
        assert_eq!(v.frames, Some(MAX_FRAMES));
        assert_eq!(v.seq_len, Some(4));
        // A sequential engine with no axes gets the campaign defaults.
        let req = DiagnoseRequest {
            engine: EngineKind::SeqBsat,
            ..DiagnoseRequest::default()
        };
        let v = req.validated().unwrap();
        assert_eq!(v.frames, Some(3));
        assert_eq!(v.seq_len, Some(4));
        // Engines without a sequential variant are rejected.
        let req = DiagnoseRequest {
            engine: EngineKind::Auto,
            frames: Some(3),
            ..DiagnoseRequest::default()
        };
        assert!(req.validated().unwrap_err().contains("sequential variant"));
        // Test generation is combinational-only.
        let req = DiagnoseRequest {
            engine: EngineKind::SeqBsim,
            test_gen_rounds: Some(2),
            ..DiagnoseRequest::default()
        };
        assert!(req.validated().unwrap_err().contains("combinational-only"));
    }

    #[test]
    fn validation_rejects_zero_limits() {
        for mutate in [
            (|r: &mut DiagnoseRequest| r.p = 0) as fn(&mut DiagnoseRequest),
            |r| r.tests = 0,
            |r| r.max_test_vectors = 0,
            |r| r.k = Some(0),
            |r| r.max_solutions = 0,
            |r| r.test_gen_rounds = Some(0),
        ] {
            let mut req = DiagnoseRequest::default();
            mutate(&mut req);
            assert!(req.validated().is_err());
        }
    }

    #[test]
    fn content_hash_is_construction_invariant() {
        use gatediag_netlist::parse_bench;
        let golden = c17();
        let reparsed = parse_bench(&write_bench(&golden)).unwrap();
        assert_eq!(
            circuit_content_hash(&golden),
            circuit_content_hash(&reparsed)
        );
    }

    #[test]
    fn repeated_requests_hit_the_memo() {
        let session = CircuitSession::new("c17", c17());
        let request = DiagnoseRequest {
            engine: EngineKind::Bsat,
            seed: 42,
            ..DiagnoseRequest::default()
        };
        let (first, warm) = session
            .diagnose(&request, Parallelism::Sequential, ChaosPolicy::off())
            .unwrap();
        assert!(!warm);
        let (second, warm) = session
            .diagnose(&request, Parallelism::Sequential, ChaosPolicy::off())
            .unwrap();
        assert!(warm);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(session.warm_hits(), 1);
        assert_eq!(session.cold_runs(), 1);
        assert_eq!(session.cached_outcomes(), 1);
        // A different seed is a different key.
        let other = DiagnoseRequest {
            seed: 43,
            ..request.clone()
        };
        let (_, warm) = session
            .diagnose(&other, Parallelism::Sequential, ChaosPolicy::off())
            .unwrap();
        assert!(!warm);
        assert_eq!(session.cached_outcomes(), 2);
    }

    #[test]
    fn warm_hits_charge_no_engine_counters() {
        let session = CircuitSession::new("c17", c17());
        let request = DiagnoseRequest {
            engine: EngineKind::Bsat,
            seed: 42,
            ..DiagnoseRequest::default()
        };
        session
            .diagnose(&request, Parallelism::Sequential, ChaosPolicy::off())
            .unwrap();
        // Second run under a fresh sink: only the warm-hit counter.
        let sink = Arc::new(gatediag_obs::Sink::new());
        let guard = gatediag_obs::install(Arc::clone(&sink));
        let (_, warm) = session
            .diagnose(&request, Parallelism::Sequential, ChaosPolicy::off())
            .unwrap();
        drop(guard);
        assert!(warm);
        let trace = sink.take_trace();
        assert_eq!(trace.counter("session.warm_hits"), 1);
        assert_eq!(trace.counter("cnf.gates_encoded"), 0);
        assert_eq!(trace.counter("netlist.builds"), 0);
    }

    #[test]
    fn deadline_and_chaos_requests_bypass_the_memo() {
        let session = CircuitSession::new("c17", c17());
        let deadline = DiagnoseRequest {
            deadline_ms: Some(10_000),
            ..DiagnoseRequest::default()
        };
        for _ in 0..2 {
            let (_, warm) = session
                .diagnose(&deadline, Parallelism::Sequential, ChaosPolicy::off())
                .unwrap();
            assert!(!warm);
        }
        assert_eq!(session.cached_outcomes(), 0);
        let chaotic = ChaosPolicy::new(
            crate::chaos::ChaosConfig {
                seed: 7,
                rate_ppm: 0,
            },
            1,
        );
        let (_, warm) = session
            .diagnose(
                &DiagnoseRequest::default(),
                Parallelism::Sequential,
                chaotic,
            )
            .unwrap();
        assert!(!warm);
        assert_eq!(session.cached_outcomes(), 0);
    }
}
