//! BSIM: basic simulation-based diagnosis by path tracing (paper Fig. 1).
//!
//! `PathTrace` walks backwards from the erroneous output over the simulated
//! faulty circuit, at each gate following one input at a controlling value
//! (or all inputs when none is controlling). `BasicSimDiagnose` runs it per
//! test, yielding one candidate set `C_i` per test plus the mark counts
//! `M(g)` used to rank candidates.

use crate::budget::{Budget, Truncation};
use crate::test_set::TestSet;
use gatediag_netlist::{Circuit, GateId, GateKind, GateSet};
use gatediag_sim::{pack_vectors_into, parallel_map_init_while, PackedSim, Parallelism};

/// How path tracing treats multiple controlling inputs.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MarkPolicy {
    /// Mark exactly one controlling input (the first in fan-in order) —
    /// the paper's Fig. 1 step (3).
    #[default]
    FirstControlling,
    /// Mark every controlling input — a conservative variant that makes
    /// `C_i` a superset of the paper's; used for ablation.
    AllControlling,
}

/// Options for [`path_trace`] / [`basic_sim_diagnose`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct BsimOptions {
    /// Controlling-input marking policy.
    pub policy: MarkPolicy,
    /// Whether primary inputs appear in candidate sets. The paper corrects
    /// gates only, so the default is `false`; tracing still passes through
    /// inputs either way.
    pub include_inputs: bool,
    /// Worker count for sharding the packed sweeps and per-test path
    /// traces. The result is bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Cooperative budget. BSIM's deterministic work unit is **one test
    /// traced**: a work budget truncates the test list to a prefix (a pure
    /// function of the input, so still bit-identical for every worker
    /// count), while the opt-in wall deadline stops between sweep batches
    /// (nondeterministic — see [`crate::budget`]). `conflicts` is ignored
    /// (BSIM runs no solver).
    pub budget: Budget,
}

/// Result of [`basic_sim_diagnose`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BsimResult {
    /// Candidate set `C_i` per *traced* test, in test order. Equal in
    /// length to the test set unless a budget truncated the run, in which
    /// case it is the traced prefix (see [`BsimResult::truncation`]).
    pub candidate_sets: Vec<GateSet>,
    /// `M(g)`: number of tests whose candidate set contains `g`.
    pub mark_counts: Vec<u32>,
    /// Union of all candidate sets (`∪ C_i`).
    pub union: GateSet,
    /// Why the run stopped early, if it did (`None` = all tests traced).
    pub truncation: Option<Truncation>,
    /// Deterministic work charged: the number of tests actually traced.
    pub work: u64,
}

impl BsimResult {
    /// Gates marked by the maximal number of tests
    /// (`G_max = {g : ∀h: M(g) ≥ M(h)}`, Table 3).
    pub fn gmax(&self) -> Vec<GateId> {
        let best = self.mark_counts.iter().copied().max().unwrap_or(0);
        if best == 0 {
            return Vec::new();
        }
        self.mark_counts
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == best)
            .map(|(i, _)| GateId::new(i))
            .collect()
    }

    /// Candidates of test `i` as a sorted vector.
    pub fn candidates_of(&self, i: usize) -> Vec<GateId> {
        self.candidate_sets[i].iter().collect()
    }
}

/// Path tracing from one erroneous output over pre-simulated values
/// (paper Fig. 1, steps 2-4).
///
/// `values` must be the faulty circuit's simulation of the test vector.
/// Returns the marked candidate gates.
///
/// # Panics
///
/// Panics if `values.len() != circuit.len()`.
pub fn path_trace(
    circuit: &Circuit,
    values: &[bool],
    output: GateId,
    options: BsimOptions,
) -> GateSet {
    assert_eq!(values.len(), circuit.len(), "value array size mismatch");
    path_trace_values(circuit, |g| values[g.index()], output, options)
}

/// Path tracing directly over packed simulation words: reads lane `lane`
/// of gate-major `words` (`words_per_gate` words per gate) without
/// unpacking a full `Vec<bool>` per test.
///
/// `words` is the layout produced by
/// [`PackedSim::values`](gatediag_sim::PackedSim::values).
///
/// # Panics
///
/// Panics if `words.len() != circuit.len() * words_per_gate` or the lane
/// is out of range.
pub fn path_trace_packed(
    circuit: &Circuit,
    words: &[u64],
    words_per_gate: usize,
    lane: usize,
    output: GateId,
    options: BsimOptions,
) -> GateSet {
    assert_eq!(
        words.len(),
        circuit.len() * words_per_gate,
        "packed value array size mismatch"
    );
    assert!(lane < words_per_gate * 64, "lane out of range");
    let (word, bit) = (lane / 64, lane % 64);
    path_trace_values(
        circuit,
        |g| words[g.index() * words_per_gate + word] >> bit & 1 == 1,
        output,
        options,
    )
}

/// Shared tracing kernel over an arbitrary value accessor, so the scalar
/// and packed entry points cannot drift apart. Walks the circuit's CSR
/// arrays directly — this loop runs once per (test, output) and is the
/// remaining per-test cost after simulation is amortised over packed
/// sweeps.
fn path_trace_values(
    circuit: &Circuit,
    value_of: impl Fn(GateId) -> bool,
    output: GateId,
    options: BsimOptions,
) -> GateSet {
    let kinds = circuit.kinds();
    let (heads, edges) = circuit.fanin_csr();
    let mut visited = GateSet::new(circuit.len());
    let mut candidates = GateSet::new(circuit.len());
    let mut worklist = Vec::with_capacity(64);
    worklist.push(output);
    while let Some(id) = worklist.pop() {
        if !visited.insert(id) {
            continue;
        }
        let kind = kinds[id.index()];
        if kind == GateKind::Input {
            if options.include_inputs {
                candidates.insert(id);
            }
            continue;
        }
        if kind.is_source() {
            // Constants are correctable candidates but have no fan-ins to
            // trace through.
            candidates.insert(id);
            continue;
        }
        candidates.insert(id);
        let fanins = &edges[heads[id.index()] as usize..heads[id.index() + 1] as usize];
        match kind.controlling_value() {
            Some(cv) => {
                let mut controlling = fanins
                    .iter()
                    .copied()
                    .filter(|&f| value_of(f) == cv)
                    .peekable();
                if controlling.peek().is_some() {
                    match options.policy {
                        MarkPolicy::FirstControlling => {
                            worklist.push(controlling.next().expect("peeked non-empty"));
                        }
                        MarkPolicy::AllControlling => worklist.extend(controlling),
                    }
                } else {
                    worklist.extend_from_slice(fanins);
                }
            }
            // No controlling value (XOR/XNOR/NOT/BUF): every input is on a
            // sensitised path.
            None => worklist.extend_from_slice(fanins),
        }
    }
    candidates
}

/// `BasicSimDiagnose` (paper Fig. 1 step 5): path tracing per test.
///
/// # Examples
///
/// ```
/// use gatediag_core::{basic_sim_diagnose, generate_failing_tests, BsimOptions};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 3);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
/// let result = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
/// // With a single error, the real site is in every candidate set.
/// // (Guaranteed by the theory for single errors under AllControlling;
/// // overwhelmingly common under the paper's FirstControlling policy.)
/// assert_eq!(result.candidate_sets.len(), tests.len());
/// # let _ = sites;
/// ```
pub fn basic_sim_diagnose(circuit: &Circuit, tests: &TestSet, options: BsimOptions) -> BsimResult {
    // One bit-parallel sweep covers up to `SWEEP_PATTERNS` tests: the
    // faulty circuit is simulated once per batch and path tracing reads
    // candidate values straight out of the packed words, so the per-test
    // cost is the trace itself, not a full scalar resimulation.
    const SWEEP_PATTERNS: usize = 512;
    // Cooperative budget: the deterministic work unit is one traced test,
    // so a work budget simply truncates the test list to a prefix *before*
    // the fan-out — the truncation point is a pure function of the input
    // and therefore bit-identical for every worker count. The wall
    // deadline, by contrast, is checked between batches below.
    let mut meter = options.budget.meter();
    let traced = usize::try_from(meter.remaining_work())
        .unwrap_or(usize::MAX)
        .min(tests.len());
    let work_truncated = traced < tests.len();
    let tests_slice = &tests.tests()[..traced];
    // Sharding: each batch (one packed sweep + its path traces) is an
    // independent unit claimed off the pool's shared index. With fewer
    // batches than workers, batches shrink (in whole 64-test words) so
    // every worker gets a share of both the sweeps and the traces. The
    // per-test results do not depend on how tests are grouped into
    // batches, so any chunking is bit-identical to the sequential one.
    //
    // Under the default `Auto`, the work floor keeps small workloads
    // (tiny circuits or few tests) inline; explicit `Fixed(n)` or a
    // `GATEDIAG_WORKERS` override always fans out as requested.
    let workers = options.parallelism.workers_for(
        traced.div_ceil(64),
        circuit.len().saturating_mul(traced),
        gatediag_sim::AUTO_WORK_FLOOR,
    );
    let chunk = if workers > 1 {
        (traced.div_ceil(workers)).div_ceil(64) * 64
    } else {
        SWEEP_PATTERNS
    }
    .clamp(64, SWEEP_PATTERNS);
    let batches: Vec<&[crate::test_set::Test]> = tests_slice.chunks(chunk).collect();
    // The deadline probe is the cooperative checkpoint between batches; a
    // `None` budget compiles down to a constant-true probe.
    let deadline = meter.deadline();
    let per_batch: Vec<Option<Vec<GateSet>>> = parallel_map_init_while(
        workers,
        batches.len(),
        || (PackedSim::new(circuit), Vec::new(), Vec::new()),
        |(sim, packed, vectors), b| {
            let batch = batches[b];
            vectors.clear();
            vectors.extend(batch.iter().map(|t| t.vector.as_slice()));
            let words = pack_vectors_into(circuit, vectors, packed);
            sim.reset(words);
            sim.set_input_words(packed);
            sim.sweep();
            batch
                .iter()
                .enumerate()
                .map(|(lane, test)| {
                    path_trace_packed(circuit, sim.values(), words, lane, test.output, options)
                })
                .collect()
        },
        || deadline.is_none_or(|d| std::time::Instant::now() < d),
    );
    let mut candidate_sets = Vec::with_capacity(traced);
    let mut mark_counts = vec![0u32; circuit.len()];
    let mut union = GateSet::new(circuit.len());
    let mut deadline_hit = false;
    for batch in per_batch {
        let Some(batch) = batch else {
            // The deadline fired mid-fan-out: keep the contiguous prefix of
            // traced tests (later batches may have completed on other
            // workers, but a gap would misalign `C_i` with test `i`).
            deadline_hit = true;
            break;
        };
        for marked in batch {
            for g in marked.iter() {
                mark_counts[g.index()] += 1;
            }
            union.union_with(&marked);
            candidate_sets.push(marked);
        }
    }
    if deadline_hit {
        meter.note(Truncation::Deadline);
    } else if work_truncated {
        meter.note(Truncation::Work);
    }
    let work = candidate_sets.len() as u64;
    BsimResult {
        candidate_sets,
        mark_counts,
        union,
        truncation: meter.truncation(),
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::{generate_failing_tests, Test};
    use gatediag_netlist::{c17, inject_errors, CircuitBuilder, RandomCircuitSpec};
    use gatediag_sim::simulate;

    fn trace_c17(vector: [bool; 5], output: &str, options: BsimOptions) -> Vec<String> {
        let c = c17();
        let values = simulate(&c, &vector);
        let marked = path_trace(&c, &values, c.find(output).unwrap(), options);
        let mut names: Vec<String> = marked
            .iter()
            .map(|g| c.gate_name(g).unwrap().to_string())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn path_trace_marks_output_gate() {
        let marked = trace_c17([false; 5], "G22", BsimOptions::default());
        assert!(marked.contains(&"G22".to_string()));
    }

    #[test]
    fn path_trace_hand_computed_c17() {
        // Inputs all 0: G10=NAND(0,0)=1, G11=1, G16=NAND(0,1)=1,
        // G19=NAND(1,0)=1, G22=NAND(G10=1,G16=1)=0.
        // At G22 no input is controlling (cv of NAND is 0) -> mark both.
        // G10: inputs G1=0,G3=0 both controlling -> mark first (G1, input).
        // G16: inputs G2=0 (controlling), G11 -> mark G2 (input).
        let marked = trace_c17([false; 5], "G22", BsimOptions::default());
        assert_eq!(marked, vec!["G10", "G16", "G22"]);
        // With inputs included, G1 and G2 appear too.
        let with_inputs = trace_c17(
            [false; 5],
            "G22",
            BsimOptions {
                include_inputs: true,
                ..BsimOptions::default()
            },
        );
        assert_eq!(with_inputs, vec!["G1", "G10", "G16", "G2", "G22"]);
    }

    #[test]
    fn all_controlling_is_superset_of_first_controlling() {
        let c = RandomCircuitSpec::new(6, 2, 60).seed(3).generate();
        let (faulty, _) = inject_errors(&c, 2, 3);
        let tests = generate_failing_tests(&c, &faulty, 8, 3, 4096);
        let first = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        let all = basic_sim_diagnose(
            &faulty,
            &tests,
            BsimOptions {
                policy: MarkPolicy::AllControlling,
                ..BsimOptions::default()
            },
        );
        for (f, a) in first.candidate_sets.iter().zip(&all.candidate_sets) {
            for g in f.iter() {
                assert!(a.contains(g), "{g} in first-controlling but not all");
            }
        }
    }

    #[test]
    fn single_error_site_is_in_every_set_under_all_controlling() {
        // Theory: with one error, the error site lies on a sensitised path
        // to the erroneous output, and AllControlling marks every
        // sensitised path.
        for seed in 0..6 {
            let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 4096);
            let result = basic_sim_diagnose(
                &faulty,
                &tests,
                BsimOptions {
                    policy: MarkPolicy::AllControlling,
                    ..BsimOptions::default()
                },
            );
            for (i, set) in result.candidate_sets.iter().enumerate() {
                assert!(
                    set.contains(sites[0].gate),
                    "seed {seed}: error {} missing from C_{i}",
                    sites[0].gate
                );
            }
        }
    }

    #[test]
    fn mark_counts_sum_matches_sets() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 4);
        let tests = generate_failing_tests(&golden, &faulty, 8, 4, 4096);
        let result = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        let total: u32 = result.mark_counts.iter().sum();
        let expected: usize = result.candidate_sets.iter().map(|s| s.len()).sum();
        assert_eq!(total as usize, expected);
        // Union is consistent.
        for (id, &m) in result.mark_counts.iter().enumerate() {
            assert_eq!(m > 0, result.union.contains(GateId::new(id)));
        }
    }

    #[test]
    fn gmax_contains_argmax_only() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 8);
        let tests = generate_failing_tests(&golden, &faulty, 8, 8, 4096);
        let result = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
        let gmax = result.gmax();
        assert!(!gmax.is_empty());
        let best = result.mark_counts.iter().copied().max().unwrap();
        for g in &gmax {
            assert_eq!(result.mark_counts[g.index()], best);
        }
        for (i, &m) in result.mark_counts.iter().enumerate() {
            if m == best {
                assert!(gmax.contains(&GateId::new(i)));
            }
        }
    }

    #[test]
    fn trace_marks_constants_without_tracing_through() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let k = b.anon_gate(GateKind::Const1, vec![]);
        let g = b.gate(GateKind::Xor, vec![a, k], "g");
        b.output(g);
        let c = b.finish().unwrap();
        let values = simulate(&c, &[true]);
        let marked = path_trace(&c, &values, g, BsimOptions::default());
        assert!(marked.contains(g));
        assert!(marked.contains(k), "constants are correctable candidates");
    }

    #[test]
    fn multiplicity_bound_holds_when_premise_holds() {
        // Paper Sec. 2.2 (citing Kuehlmann et al. [10]): "because the
        // candidate set of each test contains at least one actual error
        // site, at least one actual error site is marked by more than m/p
        // tests". The pigeonhole consequence of the premise is
        // max_e M(e) >= ceil(m/p); we verify exactly that whenever the
        // premise holds (interacting errors can violate it, which is part
        // of why BSIM offers no guarantees).
        let mut premise_held = 0;
        for seed in 0..10u64 {
            for p in 2..=3usize {
                let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
                let (faulty, sites) = inject_errors(&golden, p, seed);
                let tests = generate_failing_tests(&golden, &faulty, 8, seed, 8192);
                if tests.len() < 4 {
                    continue;
                }
                let result = basic_sim_diagnose(
                    &faulty,
                    &tests,
                    BsimOptions {
                        policy: MarkPolicy::AllControlling,
                        ..BsimOptions::default()
                    },
                );
                let premise = result
                    .candidate_sets
                    .iter()
                    .all(|set| sites.iter().any(|s| set.contains(s.gate)));
                if !premise {
                    continue;
                }
                premise_held += 1;
                let m = tests.len();
                let best_error_marks = sites
                    .iter()
                    .map(|s| result.mark_counts[s.gate.index()] as usize)
                    .max()
                    .expect("at least one site");
                assert!(
                    best_error_marks >= m.div_ceil(p),
                    "seed {seed} p {p}: max error marks {best_error_marks} < ceil({m}/{p})"
                );
            }
        }
        assert!(premise_held > 0, "premise never held — no case exercised");
    }

    #[test]
    fn empty_test_set_gives_empty_result() {
        let c = c17();
        let result = basic_sim_diagnose(&c, &TestSet::default(), BsimOptions::default());
        assert!(result.candidate_sets.is_empty());
        assert!(result.union.is_empty());
        assert!(result.gmax().is_empty());
    }

    #[test]
    fn multi_output_test_traces_designated_output_only() {
        let c = c17();
        let t = Test {
            vector: vec![false; 5],
            output: c.find("G23").unwrap(),
            expected: true,
        };
        let result = basic_sim_diagnose(&c, &TestSet::new(vec![t]), BsimOptions::default());
        // G22's private fan-in G10 must not be marked when tracing G23.
        let g10 = c.find("G10").unwrap();
        assert!(!result.candidate_sets[0].contains(g10));
    }
}
