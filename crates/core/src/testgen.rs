//! SAT-guided discriminating-test generation — closing the sim↔SAT loop.
//!
//! Random test sets (see [`crate::generate_failing_tests`]) often leave a
//! diagnosis ambiguous: several correction candidates rectify every test
//! seen so far. This module asks the CDCL solver the question simulation
//! cannot ask: *is there an input vector that tells two candidates
//! apart?* — the combinational form of the measurement-selection loop in
//! "Sequential Diagnosis by Abstraction", built from this workspace's
//! existing Tseitin machinery.
//!
//! # The refutation query
//!
//! For a candidate `C` (a set of gates, paper Definition 3: a correction
//! may drive any values at those gates), one query stacks into a single
//! solver, all sharing their primary inputs ([`gatediag_cnf::tie_inputs`]):
//!
//! * the **golden** circuit `G` and the **faulty** circuit `F`;
//! * `2^|C|` copies of `F` with `C`'s gates **pinned** to each constant
//!   assignment ([`gatediag_cnf::encode_pinned_copy`]) — the universal
//!   expansion of "no free values at `C` rectify this output";
//! * optionally a copy with a rival candidate's gates **freed**
//!   ([`gatediag_cnf::encode_freed_copy`]) for the pairwise form.
//!
//! A per-output selector `d_o` (with an at-least-one clause) activates,
//! for its output `o`: `F[o] ≠ G[o]` (the model is a genuinely *failing*
//! test with expected value `G[o]`) and `P[o] ≠ G[o]` for every pinned
//! copy (`C` cannot rectify `(t, o, G[o])`). A SAT model is therefore an
//! input vector yielding a failing test that **refutes** `C`; `UNSAT`
//! (under the accumulated blocking clauses) proves `C` *golden-consistent*
//! — no unseen failing test can ever refute it.
//!
//! Golden-consistency is also why one query per candidate suffices for
//! pairwise discrimination: every failing test is rectifiable by every
//! golden-consistent candidate, so two of them can never be told apart by
//! failing tests — they are behaviorally equivalent as diagnoses and
//! merge into one ambiguity class.
//!
//! Each model is harvested both as a plain vector (for the blocking
//! clause that guarantees progress) and directly into
//! [`PackedSim`](gatediag_sim::PackedSim)
//! pattern words (the rIC3 `rt_dfs_simulate` harvest-into-bitvec idiom);
//! one packed sweep of golden and faulty then confirms every harvested
//! vector and collects *all* its failing `(vector, output, expected)`
//! triples into the generated [`TestSet`]. Finally the input solutions
//! are re-screened against the generated tests alone, which is where the
//! `solutions_before → solutions_after` shrinkage comes from.
//!
//! Everything is deterministic: fresh solvers per query, no randomness,
//! no wall-clock dependence unless a deadline is explicitly configured —
//! so campaign reports stay byte-identical across worker counts.

use crate::budget::{Budget, Truncation};
use crate::test_set::{Test, TestSet};
use crate::validity::{screen_valid_corrections_metered, ValidityBackend};
use gatediag_cnf::{
    block_input_vector, encode_circuit, encode_freed_copy, encode_pinned_copy, harvest_input_lane,
    harvest_input_vector, tie_inputs, CircuitVars, ClauseSink,
};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{SolveResult, Solver, SolverStats, Var};
use gatediag_sim::Parallelism;

/// Universal-expansion cap: candidates with more gates than this would
/// need `2^|C|` pinned copies per query and are left unresolved instead
/// (they survive as their own ambiguity class).
pub const EXPAND_MAX: usize = 4;

/// Knobs of the test-generation phase (off by default: the phase only
/// runs when [`crate::EngineConfig::test_gen`] is `Some`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestGenPolicy {
    /// Maximum generation passes over the unresolved candidates. One
    /// pass resolves every candidate whose query finishes (refuted or
    /// proven golden-consistent); later passes only retry queries that
    /// gave up on [`TestGenPolicy::per_pair_conflicts`].
    pub rounds: usize,
    /// Conflict cap per individual query (`None` = unlimited). A query
    /// that gives up leaves its candidate unresolved.
    pub per_pair_conflicts: Option<u64>,
    /// Budget for the whole phase, intersected with the run budget
    /// ([`Budget::constrain`]). Its deterministic work unit is **one SAT
    /// query**; its conflict limit caps the phase's *cumulative*
    /// conflicts.
    pub budget: Budget,
}

impl Default for TestGenPolicy {
    fn default() -> Self {
        TestGenPolicy {
            rounds: 4,
            per_pair_conflicts: None,
            budget: Budget::default(),
        }
    }
}

/// Result of one test-generation phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestGenOutcome {
    /// The generated failing tests: every failing `(vector, output)`
    /// triple of every harvested vector, in harvest order (duplicate-free
    /// — blocking clauses make the vectors pairwise distinct).
    pub tests: TestSet,
    /// Number of input solutions (`= solutions.len()` at entry).
    pub solutions_before: usize,
    /// Number of solutions still valid for the generated tests
    /// (`survivors.len()`; always `≤ solutions_before`).
    pub solutions_after: usize,
    /// Indices (into the input solutions, ascending) of the solutions
    /// that survive the re-screen. Unscreened solutions (re-screen
    /// truncated) are conservatively kept.
    pub survivors: Vec<usize>,
    /// Partition of [`TestGenOutcome::survivors`] into ambiguity classes:
    /// all survivors *proven golden-consistent* are behaviorally
    /// equivalent and merge into one class; every unproven survivor
    /// (expansion cap, budget, or truncated re-screen) is its own class.
    /// Values are solution indices; `classes.len()` is the campaign's
    /// `ambiguity_classes` column.
    pub classes: Vec<Vec<usize>>,
    /// `Some(`[`Truncation::TestGen`]`)` when the phase's budget stopped
    /// it before resolving every candidate (work/conflicts/deadline, a
    /// per-query cap that left a candidate unresolved, or a truncated
    /// re-screen); `None` when the phase ran to completion.
    pub truncation: Option<Truncation>,
    /// Accumulated SAT statistics of every query plus the re-screen.
    pub stats: SolverStats,
}

/// Verdict of a single pairwise discrimination query
/// ([`distinguish_pair`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PairOutcome {
    /// A failing test exists that `keeper` rectifies and `refuted`
    /// provably cannot: the harvested tests (one per selected output).
    Distinguished(Vec<Test>),
    /// No failing input vector outside the blocked set separates the
    /// pair: proven equivalent as diagnoses.
    Indistinguishable,
    /// The conflict cap expired before the solver decided.
    Unknown,
}

/// `true` when `candidate` can take the refuted side of a query: small
/// enough for universal expansion and free of primary inputs (inputs are
/// fixed by the test vector, not correctable).
fn expandable(circuit: &Circuit, candidate: &[GateId]) -> bool {
    candidate.len() <= EXPAND_MAX
        && candidate
            .iter()
            .all(|&g| circuit.gate(g).kind() != GateKind::Input)
}

/// Encodes one refutation/discrimination query into `solver`; returns the
/// golden copy's variable map (the canonical input vector) and the
/// per-output selector variables.
fn build_query(
    solver: &mut Solver,
    golden: &Circuit,
    faulty: &Circuit,
    refuted: &[GateId],
    keeper: Option<&[GateId]>,
) -> (CircuitVars, Vec<Var>) {
    let g = encode_circuit(solver, golden);
    let f = encode_circuit(solver, faulty);
    tie_inputs(solver, (&g, golden.inputs()), (&f, faulty.inputs()));
    let mut pinned_copies = Vec::with_capacity(1 << refuted.len());
    for mask in 0..1usize << refuted.len() {
        let pinned: Vec<(GateId, bool)> = refuted
            .iter()
            .enumerate()
            .map(|(i, &gate)| (gate, mask >> i & 1 == 1))
            .collect();
        let copy = encode_pinned_copy(solver, faulty, &pinned);
        tie_inputs(solver, (&g, golden.inputs()), (&copy, faulty.inputs()));
        pinned_copies.push(copy);
    }
    let freed = keeper.map(|gates| {
        let copy = encode_freed_copy(solver, faulty, gates);
        tie_inputs(solver, (&g, golden.inputs()), (&copy, faulty.inputs()));
        copy
    });
    let mut selectors = Vec::with_capacity(golden.outputs().len());
    let mut at_least_one = Vec::with_capacity(golden.outputs().len());
    for (&go, &fo) in golden.outputs().iter().zip(faulty.outputs()) {
        let d = ClauseSink::new_var(solver);
        let dn = d.negative();
        let gl = g.lit(go, true);
        let fl = f.lit(fo, true);
        // d -> F[o] != G[o]: the vector is a failing test on o.
        solver.add_clause(&[dn, gl, fl]);
        solver.add_clause(&[dn, !gl, !fl]);
        // d -> P[o] != G[o] for every hardwired assignment of the
        // refuted candidate: no free values rectify o.
        for copy in &pinned_copies {
            let pl = copy.lit(fo, true);
            solver.add_clause(&[dn, gl, pl]);
            solver.add_clause(&[dn, !gl, !pl]);
        }
        // d -> R[o] == G[o]: the keeper candidate rectifies o.
        if let Some(copy) = &freed {
            let rl = copy.lit(fo, true);
            solver.add_clause(&[dn, !gl, rl]);
            solver.add_clause(&[dn, gl, !rl]);
        }
        selectors.push(d);
        at_least_one.push(d.positive());
    }
    solver.add_clause(&at_least_one);
    (g, selectors)
}

/// Asks for a failing test that `keeper` rectifies and `refuted` cannot —
/// the pairwise discrimination query, exposed for direct use (the phase
/// loop itself only needs the refutation form: see the module docs on
/// golden-consistency).
///
/// Vectors in `blocked` are excluded from the search, so a caller looping
/// over this function never sees a vector twice. The returned tests are
/// confirmed by simulation before being reported.
///
/// # Panics
///
/// Panics if `refuted` is not expandable (more than [`EXPAND_MAX`] gates,
/// or containing a primary input) or the circuits' interfaces mismatch.
pub fn distinguish_pair(
    golden: &Circuit,
    faulty: &Circuit,
    keeper: &[GateId],
    refuted: &[GateId],
    blocked: &[Vec<bool>],
    conflict_budget: Option<u64>,
) -> PairOutcome {
    assert!(
        expandable(faulty, refuted),
        "refuted candidate exceeds EXPAND_MAX or contains an input"
    );
    let mut solver = Solver::new();
    let (vars, selectors) = build_query(&mut solver, golden, faulty, refuted, Some(keeper));
    for vector in blocked {
        block_input_vector(&mut solver, &vars, golden.inputs(), vector);
    }
    solver.set_conflict_budget(conflict_budget);
    match solver.solve(&[]) {
        SolveResult::Unsat => PairOutcome::Indistinguishable,
        SolveResult::Unknown => PairOutcome::Unknown,
        SolveResult::Sat => {
            let vector = harvest_input_vector(&solver, &vars, golden.inputs());
            let golden_values = gatediag_sim::simulate(golden, &vector);
            let faulty_values = gatediag_sim::simulate(faulty, &vector);
            let tests: Vec<Test> = golden
                .outputs()
                .iter()
                .zip(faulty.outputs())
                .zip(&selectors)
                .filter(|(_, &d)| solver.model_value(d.positive()) == Some(true))
                .map(|((&go, &fo), _)| {
                    let expected = golden_values[go.index()];
                    debug_assert_ne!(
                        faulty_values[fo.index()],
                        expected,
                        "selected output does not fail"
                    );
                    Test {
                        vector: vector.clone(),
                        output: go,
                        expected,
                    }
                })
                .collect();
            debug_assert!(!tests.is_empty(), "SAT model selected no output");
            PairOutcome::Distinguished(tests)
        }
    }
}

/// Resolution state of one input solution during the phase loop.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Status {
    /// Not yet queried, or the query gave up on its conflict cap.
    Open,
    /// Proven golden-consistent: no unseen failing test refutes it.
    Consistent,
    /// A harvested test provably refutes it.
    Refuted,
    /// Structurally unqueryable (expansion cap / contains an input).
    Skipped,
}

/// Runs the discriminating-test generation phase: one refutation query
/// per unresolved candidate per round, harvesting/blocking models,
/// confirming them by one packed simulation sweep, then re-screening the
/// input solutions against the generated tests alone.
///
/// `run_budget` is the surrounding run's budget; the phase budget is its
/// intersection with [`TestGenPolicy::budget`]. `parallelism` and
/// `backend` configure the final re-screen (bit-identical results for
/// every setting).
pub fn generate_discriminating_tests(
    golden: &Circuit,
    faulty: &Circuit,
    solutions: &[Vec<GateId>],
    policy: &TestGenPolicy,
    run_budget: &Budget,
    parallelism: Parallelism,
    backend: ValidityBackend,
) -> TestGenOutcome {
    assert_eq!(
        golden.inputs().len(),
        faulty.inputs().len(),
        "golden/faulty input mismatch"
    );
    assert_eq!(
        golden.outputs().len(),
        faulty.outputs().len(),
        "golden/faulty output mismatch"
    );
    let budget = policy.budget.constrain(run_budget);
    let mut meter = budget.meter();
    let mut stats = SolverStats::default();
    let mut status: Vec<Status> = solutions
        .iter()
        .map(|sol| {
            if expandable(faulty, sol) {
                Status::Open
            } else {
                Status::Skipped
            }
        })
        .collect();

    // Harvest buffers: each model goes into a plain vector (for the
    // blocking clause) and straight into PackedSim-layout pattern words
    // (lane = harvest index) for the batch confirmation sweep below.
    let open_count = status.iter().filter(|&&s| s == Status::Open).count();
    let max_lanes = policy.rounds.saturating_mul(open_count).max(1);
    let words_per_input = max_lanes.div_ceil(64);
    let mut words = vec![0u64; golden.inputs().len() * words_per_input];
    let mut harvested: Vec<Vec<bool>> = Vec::new();
    let mut conflicts_left = budget.conflicts;
    let deadline = budget.deadline_instant();
    let mut hard_stop = false;

    'rounds: for _ in 0..policy.rounds {
        if !status.contains(&Status::Open) {
            break;
        }
        for index in 0..solutions.len() {
            if status[index] != Status::Open {
                continue;
            }
            if conflicts_left == Some(0) || !meter.charge(1) {
                hard_stop = true;
                break 'rounds;
            }
            gatediag_obs::count("testgen.queries", 1);
            let mut solver = Solver::new();
            let (vars, _) = build_query(&mut solver, golden, faulty, &solutions[index], None);
            for vector in &harvested {
                block_input_vector(&mut solver, &vars, golden.inputs(), vector);
            }
            let cap = match (policy.per_pair_conflicts, conflicts_left) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            solver.set_conflict_budget(cap);
            solver.set_deadline(deadline);
            let result = solver.solve(&[]);
            let query_stats = solver.stats();
            if let Some(left) = &mut conflicts_left {
                *left = left.saturating_sub(query_stats.conflicts);
            }
            stats.absorb(&query_stats);
            match result {
                SolveResult::Sat => {
                    let vector = harvest_input_vector(&solver, &vars, golden.inputs());
                    harvest_input_lane(
                        &solver,
                        &vars,
                        golden.inputs(),
                        &mut words,
                        words_per_input,
                        harvested.len(),
                    );
                    harvested.push(vector);
                    status[index] = Status::Refuted;
                }
                SolveResult::Unsat => status[index] = Status::Consistent,
                SolveResult::Unknown => {
                    if solver.deadline_hit() {
                        hard_stop = true;
                        break 'rounds;
                    }
                    // Conflict cap: leave the candidate open for a later
                    // round (or the final unresolved accounting).
                }
            }
        }
    }

    // Confirmation sweep: one packed simulation of golden and faulty over
    // every harvested lane at once; each failing (vector, output) pair
    // becomes a generated test.
    let mut tests = Vec::new();
    if !harvested.is_empty() {
        let mut golden_sim = gatediag_sim::PackedSim::new(golden);
        let mut faulty_sim = gatediag_sim::PackedSim::new(faulty);
        golden_sim.reset(words_per_input);
        golden_sim.set_input_words(&words);
        golden_sim.sweep();
        faulty_sim.reset(words_per_input);
        faulty_sim.set_input_words(&words);
        faulty_sim.sweep();
        for (lane, vector) in harvested.iter().enumerate() {
            let before = tests.len();
            for (&go, &fo) in golden.outputs().iter().zip(faulty.outputs()) {
                let g = golden_sim.lane(go, lane);
                if g != faulty_sim.lane(fo, lane) {
                    tests.push(Test {
                        vector: vector.clone(),
                        output: go,
                        expected: g,
                    });
                }
            }
            debug_assert!(
                tests.len() > before,
                "harvested vector is not a failing test"
            );
        }
    }
    let tests = TestSet::new(tests);

    // Re-screen the input solutions against the generated tests alone:
    // the shrinkage measurement. Unscreened solutions (truncated screen)
    // are conservatively kept.
    let mut screen_truncated = false;
    let verdicts: Vec<bool> = if tests.is_empty() {
        vec![true; solutions.len()]
    } else {
        let screen = screen_valid_corrections_metered(
            faulty,
            &tests,
            solutions,
            parallelism,
            backend,
            &budget,
        );
        stats.absorb(&screen.stats);
        screen_truncated = screen.truncation.is_some();
        let mut verdicts = screen.verdicts;
        verdicts.resize(solutions.len(), true);
        verdicts
    };
    let survivors: Vec<usize> = (0..solutions.len()).filter(|&i| verdicts[i]).collect();

    // Equivalence classes: all proven-golden-consistent survivors merge
    // into one (no failing test can ever separate them); every unproven
    // survivor stays its own class.
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut consistent_class: Option<usize> = None;
    for &index in &survivors {
        if status[index] == Status::Consistent {
            match consistent_class {
                Some(c) => classes[c].push(index),
                None => {
                    consistent_class = Some(classes.len());
                    classes.push(vec![index]);
                }
            }
        } else {
            classes.push(vec![index]);
        }
    }

    let unresolved = status.contains(&Status::Open);
    TestGenOutcome {
        solutions_before: solutions.len(),
        solutions_after: survivors.len(),
        tests,
        survivors,
        classes,
        truncation: (hard_stop || unresolved || screen_truncated).then_some(Truncation::TestGen),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_engine, EngineConfig, EngineKind};
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    /// A workload with an observable single injected error and its site.
    fn workload(seed: u64) -> Option<(Circuit, Circuit, GateId, TestSet)> {
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
        let (faulty, sites) = inject_errors(&golden, 1, seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 14);
        if tests.is_empty() {
            return None;
        }
        Some((golden, faulty, sites[0].gate, tests))
    }

    fn defaults() -> (TestGenPolicy, Budget, Parallelism, ValidityBackend) {
        (
            TestGenPolicy::default(),
            Budget::default(),
            Parallelism::Sequential,
            ValidityBackend::default(),
        )
    }

    #[test]
    fn generated_tests_fail_and_refuted_solutions_really_die() {
        let mut exercised = false;
        for seed in 0..8 {
            let Some((golden, faulty, _, tests)) = workload(seed) else {
                continue;
            };
            let run = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
            let (policy, budget, par, backend) = defaults();
            let outcome = generate_discriminating_tests(
                &golden,
                &faulty,
                &run.solutions,
                &policy,
                &budget,
                par,
                backend,
            );
            assert_eq!(outcome.solutions_before, run.solutions.len());
            assert!(outcome.solutions_after <= outcome.solutions_before);
            assert_eq!(outcome.solutions_after, outcome.survivors.len());
            for t in &outcome.tests {
                let g = gatediag_sim::simulate(&golden, &t.vector);
                let f = gatediag_sim::simulate(&faulty, &t.vector);
                assert_eq!(g[t.output.index()], t.expected, "not golden's value");
                assert_ne!(f[t.output.index()], t.expected, "not a failing test");
            }
            // Dropped solutions are exactly those invalid for the
            // generated tests (no truncation in this configuration).
            assert_eq!(outcome.truncation, None);
            for (i, sol) in run.solutions.iter().enumerate() {
                assert_eq!(
                    outcome.survivors.contains(&i),
                    is_valid_correction(&faulty, &outcome.tests, sol),
                    "seed {seed}: survivor set disagrees with the validity oracle"
                );
            }
            exercised |= !outcome.tests.is_empty();
        }
        assert!(exercised, "no workload produced any discriminating test");
    }

    #[test]
    fn deterministic_given_inputs() {
        for seed in 0..8 {
            let Some((golden, faulty, _, tests)) = workload(seed) else {
                continue;
            };
            let run = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
            let (policy, budget, par, backend) = defaults();
            let a = generate_discriminating_tests(
                &golden,
                &faulty,
                &run.solutions,
                &policy,
                &budget,
                par,
                backend,
            );
            let b = generate_discriminating_tests(
                &golden,
                &faulty,
                &run.solutions,
                &policy,
                &budget,
                gatediag_sim::Parallelism::Fixed(4),
                backend,
            );
            assert_eq!(a, b, "seed {seed}: parallel re-screen drifted");
            return;
        }
        panic!("no observable workload");
    }

    #[test]
    fn golden_consistent_candidates_merge_into_one_class() {
        // The true error site is golden-consistent (freeing it can mimic
        // the golden function), and so is any superset of it: both must
        // survive and share one ambiguity class.
        for seed in 0..16 {
            let Some((golden, faulty, site, _)) = workload(seed) else {
                continue;
            };
            let other = faulty
                .iter()
                .find(|(id, g)| *id != site && g.kind() != GateKind::Input)
                .map(|(id, _)| id)
                .unwrap();
            let superset = {
                let mut s = vec![site, other];
                s.sort();
                s
            };
            let solutions = vec![vec![site], superset];
            let (policy, budget, par, backend) = defaults();
            let outcome = generate_discriminating_tests(
                &golden, &faulty, &solutions, &policy, &budget, par, backend,
            );
            assert_eq!(outcome.truncation, None, "seed {seed}");
            assert_eq!(outcome.solutions_after, 2, "seed {seed}: {outcome:?}");
            assert_eq!(
                outcome.classes,
                vec![vec![0, 1]],
                "seed {seed}: golden-consistent pair did not merge"
            );
            assert!(outcome.tests.is_empty(), "seed {seed}");
            return;
        }
        panic!("no observable workload");
    }

    #[test]
    fn work_budget_truncates_with_testgen_reason() {
        for seed in 0..16 {
            let Some((golden, faulty, _, tests)) = workload(seed) else {
                continue;
            };
            let run = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
            if run.solutions.len() < 2 {
                continue;
            }
            let (mut policy, budget, par, backend) = defaults();
            policy.budget.work = Some(1);
            let outcome = generate_discriminating_tests(
                &golden,
                &faulty,
                &run.solutions,
                &policy,
                &budget,
                par,
                backend,
            );
            assert_eq!(outcome.truncation, Some(Truncation::TestGen), "seed {seed}");
            assert!(outcome.truncation.unwrap().is_preemption());
            // Still well-formed and conservative.
            assert!(outcome.solutions_after <= outcome.solutions_before);
            return;
        }
        panic!("no workload with at least two covers");
    }

    #[test]
    fn distinguish_pair_separates_site_from_wrong_gate() {
        for seed in 0..16 {
            let Some((golden, faulty, site, _tests)) = workload(seed) else {
                continue;
            };
            // A wrong single-gate candidate: implicated by nothing —
            // just pick some other gate and see if the site wins.
            let Some(wrong) = faulty
                .iter()
                .find(|(id, g)| *id != site && g.kind() != GateKind::Input)
                .map(|(id, _)| id)
            else {
                continue;
            };
            match distinguish_pair(&golden, &faulty, &[site], &[wrong], &[], None) {
                PairOutcome::Distinguished(found) => {
                    assert!(!found.is_empty());
                    for t in &found {
                        let g = gatediag_sim::simulate(&golden, &t.vector);
                        let f = gatediag_sim::simulate(&faulty, &t.vector);
                        assert_eq!(g[t.output.index()], t.expected);
                        assert_ne!(f[t.output.index()], t.expected);
                        let single = TestSet::new(vec![t.clone()]);
                        assert!(
                            is_valid_correction(&faulty, &single, &[site]),
                            "seed {seed}: keeper does not rectify its own test"
                        );
                        assert!(
                            !is_valid_correction(&faulty, &single, &[wrong]),
                            "seed {seed}: refuted candidate rectifies the test"
                        );
                    }
                    // Blocking the found vector changes the answer.
                    let blocked: Vec<Vec<bool>> = found.iter().map(|t| t.vector.clone()).collect();
                    if let PairOutcome::Distinguished(next) =
                        distinguish_pair(&golden, &faulty, &[site], &[wrong], &blocked, None)
                    {
                        for t in &next {
                            assert!(
                                !blocked.contains(&t.vector),
                                "seed {seed}: blocked vector reappeared"
                            );
                        }
                    }
                    return;
                }
                PairOutcome::Indistinguishable => continue,
                PairOutcome::Unknown => panic!("unlimited query returned Unknown"),
            }
        }
        panic!("no pair was distinguishable");
    }

    #[test]
    fn distinguish_pair_is_reflexively_indistinguishable() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 3);
        let site = sites[0].gate;
        assert_eq!(
            distinguish_pair(&golden, &faulty, &[site], &[site], &[], None),
            PairOutcome::Indistinguishable
        );
    }

    #[test]
    fn oversized_candidates_survive_as_their_own_class() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 3);
        let site = sites[0].gate;
        let big: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| g.kind() != GateKind::Input)
            .map(|(id, _)| id)
            .take(EXPAND_MAX + 1)
            .collect();
        assert!(big.len() > EXPAND_MAX);
        let solutions = vec![vec![site], big];
        let (policy, budget, par, backend) = defaults();
        let outcome = generate_discriminating_tests(
            &golden, &faulty, &solutions, &policy, &budget, par, backend,
        );
        // The oversized set is never queried: it survives (whole-circuit
        // supersets rectify everything) as a singleton class, separate
        // from the proven-consistent site.
        assert_eq!(outcome.solutions_after, 2);
        assert_eq!(outcome.classes.len(), 2);
        assert_eq!(outcome.truncation, None);
    }
}
