//! Tests and test-sets (Definition 1 of the paper) and their generation.

use gatediag_netlist::{Circuit, GateId, VectorGen};
use gatediag_sim::{pack_vectors_into, PackedSim};

/// A diagnosis test: the triple `(t, o, v)` of Definition 1.
///
/// `vector` is the primary-input assignment, `output` the primary output
/// observed to be erroneous under it, and `expected` the correct value that
/// output should have taken.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Test {
    /// Primary input values, in `circuit.inputs()` order.
    pub vector: Vec<bool>,
    /// The erroneous primary output.
    pub output: GateId,
    /// The correct value for `output`.
    pub expected: bool,
}

/// An ordered set of [`Test`]s (Definition 2).
///
/// Order matters for reproducing the paper's experiments: diagnosing with
/// `m ∈ {4, 8, 16, 32}` tests uses prefixes of one generated set, "a part
/// of the same test-set" as in Sec. 5.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TestSet {
    tests: Vec<Test>,
}

impl TestSet {
    /// Wraps a list of tests.
    pub fn new(tests: Vec<Test>) -> Self {
        TestSet { tests }
    }

    /// The tests, in order.
    pub fn tests(&self) -> &[Test] {
        &self.tests
    }

    /// Number of tests (the paper's `m`).
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if there are no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Iterates over the tests.
    pub fn iter(&self) -> std::slice::Iter<'_, Test> {
        self.tests.iter()
    }

    /// The first `m` tests as a new set (prefix reuse as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `m > self.len()`. Use [`TestSet::prefix_at_most`] when
    /// the generator may have found fewer than `m` tests.
    pub fn prefix(&self, m: usize) -> TestSet {
        TestSet {
            tests: self.tests[..m].to_vec(),
        }
    }

    /// The first `min(m, len)` tests as a new set — the clamping variant
    /// of [`TestSet::prefix`] for callers whose generator may come up
    /// short (e.g. a near-redundant injected error).
    pub fn prefix_at_most(&self, m: usize) -> TestSet {
        self.prefix(m.min(self.tests.len()))
    }

    /// Appends every test of `other`, keeping order.
    pub fn extend_from(&mut self, other: &TestSet) {
        self.tests.extend(other.tests.iter().cloned());
    }
}

impl FromIterator<Test> for TestSet {
    fn from_iter<T: IntoIterator<Item = Test>>(iter: T) -> Self {
        TestSet {
            tests: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a Test;
    type IntoIter = std::slice::Iter<'a, Test>;

    fn into_iter(self) -> Self::IntoIter {
        self.tests.iter()
    }
}

/// Generates `want` failing tests by random simulation of the golden and
/// faulty circuit pair.
///
/// Random vectors are simulated 64-at-a-time on both circuits; every
/// (vector, output) pair on which they disagree yields a [`Test`] whose
/// `expected` value comes from the golden circuit. The returned set is
/// duplicate-free: the random generator may repeat a vector, but each
/// distinct `(vector, output)` failure is reported once, at its first
/// occurrence. Returns fewer than `want` tests if `max_vectors` random
/// vectors do not expose enough failures (e.g. the injected error is
/// close to redundant).
///
/// # Panics
///
/// Panics if the two circuits have different input/output shapes.
///
/// # Examples
///
/// ```
/// use gatediag_netlist::{c17, inject_errors};
/// use gatediag_core::generate_failing_tests;
///
/// let golden = c17();
/// let (faulty, _) = inject_errors(&golden, 1, 3);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
/// for t in &tests {
///     // Each test really fails on the faulty circuit.
///     let v = gatediag_sim::simulate(&faulty, &t.vector);
///     assert_ne!(v[t.output.index()], t.expected);
/// }
/// ```
pub fn generate_failing_tests(
    golden: &Circuit,
    faulty: &Circuit,
    want: usize,
    seed: u64,
    max_vectors: usize,
) -> TestSet {
    assert_eq!(
        golden.inputs().len(),
        faulty.inputs().len(),
        "golden/faulty input mismatch"
    );
    assert_eq!(
        golden.outputs().len(),
        faulty.outputs().len(),
        "golden/faulty output mismatch"
    );
    // Multi-word batches: one topological sweep of each circuit covers up
    // to `BATCH` random vectors, and both engines reuse their buffers
    // across batches.
    const BATCH: usize = 512;
    let mut gen = VectorGen::new(golden, seed);
    let mut tests = Vec::with_capacity(want);
    let mut seen: std::collections::HashSet<(Vec<bool>, GateId)> = std::collections::HashSet::new();
    let mut tried = 0usize;
    let mut golden_sim = PackedSim::new(golden);
    let mut faulty_sim = PackedSim::new(faulty);
    let mut packed = Vec::new();
    while tests.len() < want && tried < max_vectors {
        let batch: Vec<Vec<bool>> = (0..BATCH.min(max_vectors - tried))
            .map(|_| gen.next_vector())
            .collect();
        tried += batch.len();
        let words = pack_vectors_into(golden, &batch, &mut packed);
        golden_sim.reset(words);
        golden_sim.set_input_words(&packed);
        golden_sim.sweep();
        faulty_sim.reset(words);
        faulty_sim.set_input_words(&packed);
        faulty_sim.sweep();
        for (lane, vector) in batch.iter().enumerate() {
            if tests.len() >= want {
                break;
            }
            for &o in golden.outputs() {
                let g = golden_sim.lane(o, lane);
                if g != faulty_sim.lane(o, lane) && seen.insert((vector.clone(), o)) {
                    tests.push(Test {
                        vector: vector.clone(),
                        output: o,
                        expected: g,
                    });
                    if tests.len() >= want {
                        break;
                    }
                }
            }
        }
    }
    TestSet::new(tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatediag_netlist::{c17, inject_errors, ripple_carry_adder};
    use gatediag_sim::simulate;

    #[test]
    fn generated_tests_fail_on_faulty_and_pass_on_golden() {
        let golden = ripple_carry_adder(4);
        let (faulty, _) = inject_errors(&golden, 2, 9);
        let ts = generate_failing_tests(&golden, &faulty, 16, 9, 4096);
        assert!(!ts.is_empty(), "injected error should be observable");
        for t in &ts {
            let g = simulate(&golden, &t.vector);
            let f = simulate(&faulty, &t.vector);
            assert_eq!(g[t.output.index()], t.expected);
            assert_ne!(f[t.output.index()], t.expected);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 1);
        let a = generate_failing_tests(&golden, &faulty, 8, 5, 1024);
        let b = generate_failing_tests(&golden, &faulty, 8, 5, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_takes_first_tests() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 2);
        let ts = generate_failing_tests(&golden, &faulty, 8, 7, 4096);
        if ts.len() >= 4 {
            let p = ts.prefix(4);
            assert_eq!(p.len(), 4);
            assert_eq!(p.tests(), &ts.tests()[..4]);
        }
    }

    #[test]
    fn prefix_at_most_clamps_instead_of_panicking() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 2);
        let ts = generate_failing_tests(&golden, &faulty, 8, 7, 4096);
        let clamped = ts.prefix_at_most(ts.len() + 100);
        assert_eq!(clamped, ts);
        if !ts.is_empty() {
            assert_eq!(ts.prefix_at_most(1).len(), 1);
        }
        assert!(TestSet::default().prefix_at_most(32).is_empty());
    }

    #[test]
    fn generated_sets_are_duplicate_free() {
        // A tiny input space forces the random generator to repeat
        // vectors long before `max_vectors` runs out; the set must still
        // be (vector, output)-unique.
        let golden =
            gatediag_netlist::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
                .unwrap();
        let faulty =
            gatediag_netlist::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n").unwrap();
        let ts = generate_failing_tests(&golden, &faulty, 64, 11, 4096);
        // AND vs OR differ exactly on the two one-hot vectors.
        assert_eq!(ts.len(), 2, "expected the two distinct failures, once each");
        let mut seen = std::collections::HashSet::new();
        for t in &ts {
            assert!(
                seen.insert((t.vector.clone(), t.output)),
                "duplicate (vector, output) in generated set"
            );
        }
    }

    #[test]
    fn respects_vector_budget() {
        let golden = c17();
        // golden vs golden: no failures possible.
        let ts = generate_failing_tests(&golden, &golden, 4, 0, 256);
        assert!(ts.is_empty());
    }

    #[test]
    fn collects_multiple_failing_outputs_per_vector() {
        // An error feeding both outputs can fail both on one vector.
        let golden = c17();
        let g16 = golden.find("G16").unwrap();
        let faulty = golden.with_gate_kind(g16, gatediag_netlist::GateKind::Nor);
        let ts = generate_failing_tests(&golden, &faulty, 64, 3, 8192);
        let mut by_vector = std::collections::HashMap::new();
        for t in &ts {
            *by_vector.entry(t.vector.clone()).or_insert(0usize) += 1;
        }
        assert!(
            by_vector.values().any(|&n| n >= 2),
            "expected some vector to fail on both outputs"
        );
    }
}
