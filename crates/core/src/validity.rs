//! Valid-correction oracles (Definition 3 of the paper).
//!
//! A candidate set `C` is a *valid correction* when replacing the functions
//! of the gates in `C` can rectify every test. Because a replacement
//! function is arbitrary, its output on any single test vector is a free
//! Boolean value — so validity decomposes per test into "∃ values at `C`
//! making the designated output correct". Two independent oracles:
//!
//! * [`is_valid_correction_sim`] — exhaustive forced-value simulation,
//!   64 value combinations per packed sweep (exact, exponential in `|C|`);
//! * [`is_valid_correction_sat`] — one small SAT query per test (exact,
//!   scales to large `C`).
//!
//! The two must always agree; property tests enforce it. Validity is
//! monotone under supersets (force the extra gates to the values they
//! would compute anyway), which the essentiality analysis relies on.

use crate::test_set::{Test, TestSet};
use gatediag_cnf::{encode_gate, ClauseSink};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{SolveResult, Solver, Var};
use gatediag_sim::PackedSim;

/// Words per gate used by the forced-value screening sweeps: 16 words =
/// 1024 candidate-value combinations per incremental propagation.
const SCREEN_WORDS: usize = 16;

/// Exact validity check by exhaustive forced-value simulation.
///
/// For every test, tries all `2^|C|` assignments of replacement values to
/// the candidate gates — batched `64 * SCREEN_WORDS` combinations per
/// sweep of a reusable [`PackedSim`] — and checks whether some assignment
/// produces the expected value at the test's output. After the per-test
/// baseline sweep, each batch only re-simulates the fan-out cones of the
/// candidate gates (incremental forced-value propagation), so screening a
/// candidate set is far cheaper than `tests * combos` full simulations.
///
/// # Panics
///
/// Panics if `candidates.len() > 16` (use the SAT oracle instead) or if a
/// candidate is a source gate.
pub fn is_valid_correction_sim(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    assert!(
        candidates.len() <= 16,
        "simulation oracle limited to 16 candidates; use is_valid_correction_sat"
    );
    for &g in candidates {
        assert!(
            circuit.gate(g).kind() != GateKind::Input,
            "candidate {g} is a primary input"
        );
    }
    let combos = 1u64 << candidates.len();
    let words = (combos.div_ceil(64) as usize).min(SCREEN_WORDS);
    let mut sim = PackedSim::new(circuit);
    sim.reset(words);
    let mut force_words = vec![0u64; words];
    let mut first = true;
    for t in tests {
        if !test_rectifiable_sim(&mut sim, t, candidates, &mut force_words, first) {
            return false;
        }
        first = false;
    }
    true
}

fn test_rectifiable_sim(
    sim: &mut PackedSim<'_>,
    test: &Test,
    candidates: &[GateId],
    force_words: &mut [u64],
    first: bool,
) -> bool {
    let words = sim.words_per_gate();
    let combos = 1u64 << candidates.len();
    // Per-test baseline: every lane carries the same input vector. The
    // first test needs a full sweep (the engine starts on a zeroed,
    // inconsistent value array); later tests reuse the previous test's
    // values and propagate only the cones of inputs that changed.
    sim.clear_forced();
    sim.set_inputs_broadcast(&test.vector);
    if first {
        sim.sweep();
    } else {
        sim.propagate();
    }
    let mut base = 0u64;
    while base < combos {
        let lanes = (combos - base).min(64 * words as u64);
        // Lane l encodes combination base + l: candidate i takes bit i.
        for (i, &g) in candidates.iter().enumerate() {
            for (w, word) in force_words.iter_mut().enumerate() {
                let mut bits = 0u64;
                for lane in 0..64u64 {
                    let combo = base + w as u64 * 64 + lane;
                    bits |= (combo >> i & 1) << lane;
                    if combo + 1 >= combos {
                        break;
                    }
                }
                *word = bits;
            }
            sim.force(g, force_words);
        }
        sim.propagate();
        let out_words = sim.value_words(test.output);
        for lane in 0..lanes {
            let bit = out_words[(lane / 64) as usize] >> (lane % 64) & 1 == 1;
            if bit == test.expected {
                return true;
            }
        }
        base += lanes;
    }
    false
}

/// Exact validity check by SAT.
///
/// Per test, encodes the circuit with the candidate gates' defining clauses
/// omitted (their variables are free — precisely the "mux on" semantics),
/// constrains inputs and the expected output, and asks for satisfiability.
pub fn is_valid_correction_sat(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    for &g in candidates {
        assert!(
            circuit.gate(g).kind() != GateKind::Input,
            "candidate {g} is a primary input"
        );
    }
    let mut freed = vec![false; circuit.len()];
    for &g in candidates {
        freed[g.index()] = true;
    }
    tests
        .iter()
        .all(|t| test_rectifiable_sat(circuit, t, &freed))
}

fn test_rectifiable_sat(circuit: &Circuit, test: &Test, freed: &[bool]) -> bool {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..circuit.len())
        .map(|_| ClauseSink::new_var(&mut solver))
        .collect();
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input || freed[id.index()] {
            continue;
        }
        let fanins: Vec<_> = gate
            .fanins()
            .iter()
            .map(|&f| vars[f.index()].positive())
            .collect();
        encode_gate(&mut solver, gate.kind(), vars[id.index()], &fanins, None);
    }
    for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
        solver.add_clause(&[vars[pi.index()].lit(v)]);
    }
    solver.add_clause(&[vars[test.output.index()].lit(test.expected)]);
    solver.solve(&[]) == SolveResult::Sat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    #[test]
    fn error_sites_are_always_a_valid_correction() {
        for seed in 0..5 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 2, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let gates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
            assert!(
                is_valid_correction_sim(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by sim oracle"
            );
            assert!(
                is_valid_correction_sat(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by SAT oracle"
            );
        }
    }

    #[test]
    fn oracles_agree_on_random_candidate_sets() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(5, 2, 30).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let functional: Vec<GateId> = faulty
                .iter()
                .filter(|(_, g)| !g.kind().is_source())
                .map(|(id, _)| id)
                .collect();
            for _ in 0..20 {
                let size = 1 + (seed as usize % 3);
                let candidates: Vec<GateId> = functional
                    .choose_multiple(&mut rng, size)
                    .copied()
                    .collect();
                let sim = is_valid_correction_sim(&faulty, &tests, &candidates);
                let sat = is_valid_correction_sat(&faulty, &tests, &candidates);
                assert_eq!(sim, sat, "oracles disagree on {candidates:?}");
            }
        }
    }

    #[test]
    fn validity_is_monotone() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 11);
        let tests = generate_failing_tests(&golden, &faulty, 8, 11, 4096);
        let base = vec![sites[0].gate];
        assert!(is_valid_correction_sim(&faulty, &tests, &base));
        for (id, g) in faulty.iter() {
            if g.kind().is_source() || id == sites[0].gate {
                continue;
            }
            let superset = vec![sites[0].gate, id];
            assert!(
                is_valid_correction_sim(&faulty, &tests, &superset),
                "superset {superset:?} lost validity"
            );
        }
    }

    #[test]
    fn empty_candidates_valid_iff_tests_pass() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 4, 3, 4096);
        assert!(!tests.is_empty());
        // Failing tests cannot be rectified by changing nothing.
        assert!(!is_valid_correction_sim(&faulty, &tests, &[]));
        assert!(!is_valid_correction_sat(&faulty, &tests, &[]));
        // An empty test set is trivially rectified.
        assert!(is_valid_correction_sim(&faulty, &TestSet::default(), &[]));
        assert!(is_valid_correction_sat(&faulty, &TestSet::default(), &[]));
    }

    #[test]
    fn forcing_output_gate_is_always_valid() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 2, 6);
        let tests = generate_failing_tests(&golden, &faulty, 8, 6, 4096);
        // Freeing every erroneous output gate rectifies trivially (if the
        // outputs are functional gates, which c17's are).
        let mut outs: Vec<GateId> = tests.iter().map(|t| t.output).collect();
        outs.sort();
        outs.dedup();
        assert!(is_valid_correction_sim(&faulty, &tests, &outs));
        assert!(is_valid_correction_sat(&faulty, &tests, &outs));
    }
}
