//! Valid-correction oracles (Definition 3 of the paper).
//!
//! A candidate set `C` is a *valid correction* when replacing the functions
//! of the gates in `C` can rectify every test. Because a replacement
//! function is arbitrary, its output on any single test vector is a free
//! Boolean value — so validity decomposes per test into "∃ values at `C`
//! making the designated output correct". Two independent oracles:
//!
//! * [`is_valid_correction_sim`] — exhaustive forced-value simulation,
//!   64 value combinations per packed sweep (exact, exponential in `|C|`);
//! * [`is_valid_correction_sat`] — one small SAT query per test (exact,
//!   scales to large `C`).
//!
//! The two must always agree; property tests enforce it. Validity is
//! monotone under supersets (force the extra gates to the values they
//! would compute anyway), which the essentiality analysis relies on.
//!
//! Cross-candidate loops (backtrack search, cover screening) should hold a
//! [`SimValidityEngine`] and call [`SimValidityEngine::is_valid`] per
//! candidate set: the engine keeps its [`PackedSim`] buffers and baseline
//! values across calls, so consecutive screenings only re-simulate the
//! cones of inputs and candidates that changed. Screening many candidate
//! sets at once parallelizes with [`screen_valid_corrections_sim`] — one
//! engine per worker, work-stealing over the sets.

use crate::test_set::{Test, TestSet};
use gatediag_cnf::{encode_gate, ClauseSink};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{SolveResult, Solver, Var};
use gatediag_sim::{parallel_map_init, PackedSim, Parallelism};

/// Words per gate used by the forced-value screening sweeps: 16 words =
/// 1024 candidate-value combinations per incremental propagation.
const SCREEN_WORDS: usize = 16;

/// A reusable forced-value validity oracle over one circuit.
///
/// Owns a [`PackedSim`] plus its scratch buffers, so a tight loop over
/// candidate sets (e.g. the backtrack search of
/// [`crate::sim_backtrack_diagnose`]) pays the O(gates) buffer setup and
/// the full baseline sweep *once*, after which every call re-simulates
/// only the fan-out cones of the inputs and candidate gates that changed
/// since the previous call.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, SimValidityEngine};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let mut engine = SimValidityEngine::new(&faulty);
/// // The real error site is a valid correction; screening more
/// // candidates reuses the engine's baseline incrementally.
/// assert!(engine.is_valid(&tests, &[sites[0].gate]));
/// ```
#[derive(Debug)]
pub struct SimValidityEngine<'c> {
    circuit: &'c Circuit,
    sim: PackedSim<'c>,
    force_words: Vec<u64>,
    /// Words per gate the engine is currently sized for (0 = unsized).
    words: usize,
    /// Whether `sim` holds a consistent baseline (a full sweep has run
    /// since the last `reset`), enabling propagate-only updates.
    primed: bool,
}

impl<'c> SimValidityEngine<'c> {
    /// Creates an engine for `circuit`. Buffers are sized lazily on the
    /// first [`SimValidityEngine::is_valid`] call.
    pub fn new(circuit: &'c Circuit) -> SimValidityEngine<'c> {
        SimValidityEngine {
            circuit,
            sim: PackedSim::new(circuit),
            force_words: Vec::new(),
            words: 0,
            primed: false,
        }
    }

    /// Exact validity of `candidates`, reusing the engine's baseline from
    /// previous calls. Bit-identical to [`is_valid_correction_sim`].
    ///
    /// # Panics
    ///
    /// Panics if `candidates.len() > 16` (use the SAT oracle instead) or
    /// if a candidate is a primary input.
    pub fn is_valid(&mut self, tests: &TestSet, candidates: &[GateId]) -> bool {
        assert!(
            candidates.len() <= 16,
            "simulation oracle limited to 16 candidates; use is_valid_correction_sat"
        );
        for &g in candidates {
            assert!(
                self.circuit.gate(g).kind() != GateKind::Input,
                "candidate {g} is a primary input"
            );
        }
        let combos = 1u64 << candidates.len();
        let words = (combos.div_ceil(64) as usize).min(SCREEN_WORDS);
        if self.words != words {
            // Repartitioning invalidates the value array; the next test
            // needs a full sweep again.
            self.sim.reset(words);
            self.force_words.clear();
            self.force_words.resize(words, 0);
            self.words = words;
            self.primed = false;
        }
        for t in tests {
            if !self.test_rectifiable(t, candidates) {
                return false;
            }
        }
        true
    }

    fn test_rectifiable(&mut self, test: &Test, candidates: &[GateId]) -> bool {
        let words = self.words;
        let combos = 1u64 << candidates.len();
        // Per-test baseline: every lane carries the same input vector. An
        // unprimed engine needs one full sweep (the value array is zeroed
        // and inconsistent); after that, every test of every call reuses
        // the previous values and propagates only the cones of inputs
        // that changed.
        self.sim.clear_forced();
        self.sim.set_inputs_broadcast(&test.vector);
        if self.primed {
            self.sim.propagate();
        } else {
            self.sim.sweep();
            self.primed = true;
        }
        let mut base = 0u64;
        while base < combos {
            let lanes = (combos - base).min(64 * words as u64);
            // Lane l encodes combination base + l: candidate i takes bit i.
            for (i, &g) in candidates.iter().enumerate() {
                for (w, word) in self.force_words.iter_mut().enumerate() {
                    let mut bits = 0u64;
                    for lane in 0..64u64 {
                        let combo = base + w as u64 * 64 + lane;
                        bits |= (combo >> i & 1) << lane;
                        if combo + 1 >= combos {
                            break;
                        }
                    }
                    *word = bits;
                }
                self.sim.force(g, &self.force_words);
            }
            self.sim.propagate();
            let out_words = self.sim.value_words(test.output);
            for lane in 0..lanes {
                let bit = out_words[(lane / 64) as usize] >> (lane % 64) & 1 == 1;
                if bit == test.expected {
                    return true;
                }
            }
            base += lanes;
        }
        false
    }
}

/// Exact validity check by exhaustive forced-value simulation.
///
/// For every test, tries all `2^|C|` assignments of replacement values to
/// the candidate gates — batched `64 * SCREEN_WORDS` combinations per
/// sweep of a reusable [`PackedSim`] — and checks whether some assignment
/// produces the expected value at the test's output. After the per-test
/// baseline sweep, each batch only re-simulates the fan-out cones of the
/// candidate gates (incremental forced-value propagation), so screening a
/// candidate set is far cheaper than `tests * combos` full simulations.
///
/// **Note (soft deprecation):** this convenience signature builds a fresh
/// engine — O(gates) buffer allocation plus one full baseline sweep — on
/// *every* call. Callers that screen many candidate sets against the same
/// circuit (backtrack loops, cover filtering) should construct a
/// [`SimValidityEngine`] once and call [`SimValidityEngine::is_valid`]
/// per set, or batch-screen with [`screen_valid_corrections_sim`]; both
/// are bit-identical to this function and amortise the setup.
///
/// # Panics
///
/// Panics if `candidates.len() > 16` (use the SAT oracle instead) or if a
/// candidate is a source gate.
pub fn is_valid_correction_sim(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    SimValidityEngine::new(circuit).is_valid(tests, candidates)
}

/// Screens many candidate sets in parallel: one [`SimValidityEngine`] per
/// worker, work-stealing over a shared index, verdicts in input order.
///
/// The verdict vector is bit-identical for every thread count (including
/// [`Parallelism::Sequential`], which reuses a single engine across all
/// sets — the fastest single-core option too).
///
/// # Panics
///
/// Panics under the same conditions as [`is_valid_correction_sim`].
pub fn screen_valid_corrections_sim(
    circuit: &Circuit,
    tests: &TestSet,
    candidate_sets: &[Vec<GateId>],
    parallelism: Parallelism,
) -> Vec<bool> {
    // Per-set cost scales with circuit size and test count; under `Auto`
    // tiny screens stay inline (see `Parallelism::workers_for`).
    let work = candidate_sets
        .len()
        .saturating_mul(circuit.len())
        .saturating_mul(tests.len().max(1));
    let workers =
        parallelism.workers_for(candidate_sets.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    parallel_map_init(
        workers,
        candidate_sets.len(),
        || SimValidityEngine::new(circuit),
        |engine, i| engine.is_valid(tests, &candidate_sets[i]),
    )
}

/// Exact validity check by SAT.
///
/// Per test, encodes the circuit with the candidate gates' defining clauses
/// omitted (their variables are free — precisely the "mux on" semantics),
/// constrains inputs and the expected output, and asks for satisfiability.
pub fn is_valid_correction_sat(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    for &g in candidates {
        assert!(
            circuit.gate(g).kind() != GateKind::Input,
            "candidate {g} is a primary input"
        );
    }
    let mut freed = vec![false; circuit.len()];
    for &g in candidates {
        freed[g.index()] = true;
    }
    tests
        .iter()
        .all(|t| test_rectifiable_sat(circuit, t, &freed))
}

fn test_rectifiable_sat(circuit: &Circuit, test: &Test, freed: &[bool]) -> bool {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..circuit.len())
        .map(|_| ClauseSink::new_var(&mut solver))
        .collect();
    for &id in circuit.topo_order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input || freed[id.index()] {
            continue;
        }
        let fanins: Vec<_> = gate
            .fanins()
            .iter()
            .map(|&f| vars[f.index()].positive())
            .collect();
        encode_gate(&mut solver, gate.kind(), vars[id.index()], &fanins, None);
    }
    for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
        solver.add_clause(&[vars[pi.index()].lit(v)]);
    }
    solver.add_clause(&[vars[test.output.index()].lit(test.expected)]);
    solver.solve(&[]) == SolveResult::Sat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    #[test]
    fn error_sites_are_always_a_valid_correction() {
        for seed in 0..5 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 2, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let gates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
            assert!(
                is_valid_correction_sim(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by sim oracle"
            );
            assert!(
                is_valid_correction_sat(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by SAT oracle"
            );
        }
    }

    #[test]
    fn oracles_agree_on_random_candidate_sets() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(5, 2, 30).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let functional: Vec<GateId> = faulty
                .iter()
                .filter(|(_, g)| !g.kind().is_source())
                .map(|(id, _)| id)
                .collect();
            for _ in 0..20 {
                let size = 1 + (seed as usize % 3);
                let candidates: Vec<GateId> = functional
                    .choose_multiple(&mut rng, size)
                    .copied()
                    .collect();
                let sim = is_valid_correction_sim(&faulty, &tests, &candidates);
                let sat = is_valid_correction_sat(&faulty, &tests, &candidates);
                assert_eq!(sim, sat, "oracles disagree on {candidates:?}");
            }
        }
    }

    #[test]
    fn validity_is_monotone() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 11);
        let tests = generate_failing_tests(&golden, &faulty, 8, 11, 4096);
        let base = vec![sites[0].gate];
        assert!(is_valid_correction_sim(&faulty, &tests, &base));
        for (id, g) in faulty.iter() {
            if g.kind().is_source() || id == sites[0].gate {
                continue;
            }
            let superset = vec![sites[0].gate, id];
            assert!(
                is_valid_correction_sim(&faulty, &tests, &superset),
                "superset {superset:?} lost validity"
            );
        }
    }

    #[test]
    fn empty_candidates_valid_iff_tests_pass() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 4, 3, 4096);
        assert!(!tests.is_empty());
        // Failing tests cannot be rectified by changing nothing.
        assert!(!is_valid_correction_sim(&faulty, &tests, &[]));
        assert!(!is_valid_correction_sat(&faulty, &tests, &[]));
        // An empty test set is trivially rectified.
        assert!(is_valid_correction_sim(&faulty, &TestSet::default(), &[]));
        assert!(is_valid_correction_sat(&faulty, &TestSet::default(), &[]));
    }

    #[test]
    fn reused_engine_matches_fresh_engines() {
        // One engine across many candidate sets — including repartitions
        // (|C| crossing the 6-candidate word boundary) — must agree with
        // a fresh engine per call.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(2).generate();
        let (faulty, _) = inject_errors(&golden, 2, 2);
        let tests = generate_failing_tests(&golden, &faulty, 8, 2, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut engine = SimValidityEngine::new(&faulty);
        for round in 0..30 {
            let size = [0usize, 1, 2, 3, 7][round % 5];
            let candidates: Vec<GateId> = functional
                .choose_multiple(&mut rng, size.min(functional.len()))
                .copied()
                .collect();
            assert_eq!(
                engine.is_valid(&tests, &candidates),
                is_valid_correction_sim(&faulty, &tests, &candidates),
                "round {round}: reused engine drifted on {candidates:?}"
            );
        }
    }

    #[test]
    fn batch_screening_matches_per_set_verdicts() {
        use gatediag_sim::Parallelism;
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(4).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 4);
        let tests = generate_failing_tests(&golden, &faulty, 8, 4, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sets: Vec<Vec<GateId>> = functional.iter().map(|&g| vec![g]).collect();
        sets.push(sites.iter().map(|s| s.gate).collect());
        sets.push(Vec::new());
        let expected: Vec<bool> = sets
            .iter()
            .map(|s| is_valid_correction_sim(&faulty, &tests, s))
            .collect();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
            Parallelism::Fixed(sets.len() + 5),
        ] {
            assert_eq!(
                screen_valid_corrections_sim(&faulty, &tests, &sets, parallelism),
                expected,
                "verdicts drifted at {parallelism:?}"
            );
        }
        // Empty batch.
        assert!(
            screen_valid_corrections_sim(&faulty, &tests, &[], Parallelism::Fixed(4)).is_empty()
        );
    }

    #[test]
    fn forcing_output_gate_is_always_valid() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 2, 6);
        let tests = generate_failing_tests(&golden, &faulty, 8, 6, 4096);
        // Freeing every erroneous output gate rectifies trivially (if the
        // outputs are functional gates, which c17's are).
        let mut outs: Vec<GateId> = tests.iter().map(|t| t.output).collect();
        outs.sort();
        outs.dedup();
        assert!(is_valid_correction_sim(&faulty, &tests, &outs));
        assert!(is_valid_correction_sat(&faulty, &tests, &outs));
    }
}
