//! Valid-correction oracles (Definition 3 of the paper).
//!
//! A candidate set `C` is a *valid correction* when replacing the functions
//! of the gates in `C` can rectify every test. Because a replacement
//! function is arbitrary, its output on any single test vector is a free
//! Boolean value — so validity decomposes per test into "∃ values at `C`
//! making the designated output correct". Two independent oracles:
//!
//! * [`SimValidityEngine`] — exhaustive forced-value simulation, 1024
//!   value combinations per incremental packed sweep (exact, exponential
//!   in `|C|`);
//! * [`SatValidityEngine`] / [`is_valid_correction_sat`] — the circuit
//!   encoded once with `C` freed, then one assumption-based SAT query per
//!   test (exact, scales to large `C`).
//!
//! The two must always agree; property tests enforce it. Validity is
//! monotone under supersets (force the extra gates to the values they
//! would compute anyway), which the essentiality analysis relies on.
//!
//! Callers should not hardcode a backend: [`is_valid_correction`] and the
//! reusable [`ValidityOracle`] auto-dispatch per call from `|C|`, the
//! candidates' fan-out cone size and the test count
//! ([`resolve_validity_backend`]), with the incremental simulation engine
//! as the fast path.
//!
//! Cross-candidate loops (backtrack search, cover screening) should hold a
//! [`ValidityOracle`] (or a bare [`SimValidityEngine`]) per loop: the
//! engine keeps its [`PackedSim`] buffers and baseline values across
//! calls, so consecutive screenings only re-simulate the cones of inputs
//! and candidates that changed. Screening many candidate sets at once
//! parallelizes with [`screen_valid_corrections_sim`] /
//! [`screen_valid_corrections_sat`] — one engine per worker,
//! work-stealing over the sets — and the SAT oracle itself shards its
//! independent per-test instances across workers with
//! [`is_valid_correction_sat_par`].

use crate::budget::{Budget, Truncation};
use crate::test_set::{Test, TestSet};
use gatediag_cnf::{encode_gate, ClauseSink};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{SolveResult, Solver, SolverStats, Var};
use gatediag_sim::{parallel_map_init, parallel_map_init_while, PackedSim, Parallelism};
use std::time::Instant;

/// Words per gate used by the forced-value screening sweeps: 16 words =
/// 1024 candidate-value combinations per incremental propagation.
const SCREEN_WORDS: usize = 16;

/// A reusable forced-value validity oracle over one circuit.
///
/// Owns a [`PackedSim`] plus its scratch buffers, so a tight loop over
/// candidate sets (e.g. the backtrack search of
/// [`crate::sim_backtrack_diagnose`]) pays the O(gates) buffer setup and
/// the full baseline sweep *once*, after which every call re-simulates
/// only the fan-out cones of the inputs and candidate gates that changed
/// since the previous call.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, SimValidityEngine};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let mut engine = SimValidityEngine::new(&faulty);
/// // The real error site is a valid correction; screening more
/// // candidates reuses the engine's baseline incrementally.
/// assert!(engine.is_valid(&tests, &[sites[0].gate]));
/// ```
#[derive(Debug)]
pub struct SimValidityEngine<'c> {
    circuit: &'c Circuit,
    sim: PackedSim<'c>,
    force_words: Vec<u64>,
    /// Words per gate the engine is currently sized for (0 = unsized).
    words: usize,
    /// Whether `sim` holds a consistent baseline (a full sweep has run
    /// since the last `reset`), enabling propagate-only updates.
    primed: bool,
}

impl<'c> SimValidityEngine<'c> {
    /// Creates an engine for `circuit`. Buffers are sized lazily on the
    /// first [`SimValidityEngine::is_valid`] call.
    pub fn new(circuit: &'c Circuit) -> SimValidityEngine<'c> {
        SimValidityEngine {
            circuit,
            sim: PackedSim::new(circuit),
            force_words: Vec::new(),
            words: 0,
            primed: false,
        }
    }

    /// Exact validity of `candidates`, reusing the engine's baseline from
    /// previous calls. Bit-identical to [`is_valid_correction_sim`].
    ///
    /// # Panics
    ///
    /// Panics if `candidates.len() > 16` (use the SAT oracle instead) or
    /// if a candidate is a primary input.
    pub fn is_valid(&mut self, tests: &TestSet, candidates: &[GateId]) -> bool {
        assert!(
            candidates.len() <= 16,
            "simulation oracle limited to 16 candidates; use is_valid_correction_sat"
        );
        for &g in candidates {
            assert!(
                self.circuit.gate(g).kind() != GateKind::Input,
                "candidate {g} is a primary input"
            );
        }
        let combos = 1u64 << candidates.len();
        let words = (combos.div_ceil(64) as usize).min(SCREEN_WORDS);
        if self.words != words {
            // Repartitioning invalidates the value array; the next test
            // needs a full sweep again.
            self.sim.reset(words);
            self.force_words.clear();
            self.force_words.resize(words, 0);
            self.words = words;
            self.primed = false;
        }
        for t in tests {
            if !self.test_rectifiable(t, candidates) {
                return false;
            }
        }
        true
    }

    fn test_rectifiable(&mut self, test: &Test, candidates: &[GateId]) -> bool {
        let words = self.words;
        let combos = 1u64 << candidates.len();
        // Per-test baseline: every lane carries the same input vector. An
        // unprimed engine needs one full sweep (the value array is zeroed
        // and inconsistent); after that, every test of every call reuses
        // the previous values and propagates only the cones of inputs
        // that changed.
        self.sim.clear_forced();
        self.sim.set_inputs_broadcast(&test.vector);
        if self.primed {
            self.sim.propagate();
        } else {
            self.sim.sweep();
            self.primed = true;
        }
        let mut base = 0u64;
        while base < combos {
            let lanes = (combos - base).min(64 * words as u64);
            // Lane l encodes combination base + l: candidate i takes bit i.
            for (i, &g) in candidates.iter().enumerate() {
                for (w, word) in self.force_words.iter_mut().enumerate() {
                    let mut bits = 0u64;
                    for lane in 0..64u64 {
                        let combo = base + w as u64 * 64 + lane;
                        bits |= (combo >> i & 1) << lane;
                        if combo + 1 >= combos {
                            break;
                        }
                    }
                    *word = bits;
                }
                self.sim.force(g, &self.force_words);
            }
            self.sim.propagate();
            let out_words = self.sim.value_words(test.output);
            for lane in 0..lanes {
                let bit = out_words[(lane / 64) as usize] >> (lane % 64) & 1 == 1;
                if bit == test.expected {
                    return true;
                }
            }
            base += lanes;
        }
        false
    }
}

/// Exact validity check by exhaustive forced-value simulation.
///
/// For every test, tries all `2^|C|` assignments of replacement values to
/// the candidate gates — batched `64 * SCREEN_WORDS` combinations per
/// sweep of a reusable [`PackedSim`] — and checks whether some assignment
/// produces the expected value at the test's output. After the per-test
/// baseline sweep, each batch only re-simulates the fan-out cones of the
/// candidate gates (incremental forced-value propagation), so screening a
/// candidate set is far cheaper than `tests * combos` full simulations.
///
/// # Panics
///
/// Panics if `candidates.len() > 16` (use the SAT oracle instead) or if a
/// candidate is a source gate.
#[deprecated(
    since = "0.1.0",
    note = "builds a fresh engine (O(gates) buffers + a full baseline sweep) on every call; \
            hold a `SimValidityEngine` across calls, batch with `screen_valid_corrections_sim`, \
            or let the auto-dispatching `is_valid_correction` pick the backend"
)]
pub fn is_valid_correction_sim(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    SimValidityEngine::new(circuit).is_valid(tests, candidates)
}

/// Screens many candidate sets in parallel: one [`SimValidityEngine`] per
/// worker, work-stealing over a shared index, verdicts in input order.
///
/// The verdict vector is bit-identical for every thread count (including
/// [`Parallelism::Sequential`], which reuses a single engine across all
/// sets — the fastest single-core option too).
///
/// # Panics
///
/// Panics under the same conditions as [`is_valid_correction_sim`].
pub fn screen_valid_corrections_sim(
    circuit: &Circuit,
    tests: &TestSet,
    candidate_sets: &[Vec<GateId>],
    parallelism: Parallelism,
) -> Vec<bool> {
    // Per-set cost scales with circuit size and test count; under `Auto`
    // tiny screens stay inline (see `Parallelism::workers_for`).
    let work = candidate_sets
        .len()
        .saturating_mul(circuit.len())
        .saturating_mul(tests.len().max(1));
    let workers =
        parallelism.workers_for(candidate_sets.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    parallel_map_init(
        workers,
        candidate_sets.len(),
        || SimValidityEngine::new(circuit),
        |engine, i| engine.is_valid(tests, &candidate_sets[i]),
    )
}

/// A reusable SAT validity oracle for one `(circuit, candidate set)` pair.
///
/// Encodes the circuit *once* with the candidate gates' defining clauses
/// omitted (their variables are free — precisely the "mux on" semantics),
/// then answers per-test rectifiability queries under *assumptions*
/// (inputs and the expected output value), so checking `|T|` tests costs
/// one encoding instead of `|T|`. Learnt clauses accumulate across tests,
/// which is sound (they are implied by the circuit clauses alone) and
/// usually speeds up later tests of the same set.
///
/// This is also the unit of work for per-test sharding: each pool worker
/// of [`is_valid_correction_sat_par`] holds its own engine, and because
/// per-test verdicts are exact, the merged result is bit-identical for
/// every worker count.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, SatValidityEngine};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let mut engine = SatValidityEngine::new(&faulty, &[sites[0].gate]);
/// assert!(tests.iter().all(|t| engine.test_rectifiable(t)));
/// ```
#[derive(Debug)]
pub struct SatValidityEngine<'c> {
    circuit: &'c Circuit,
    solver: Solver,
    vars: Vec<Var>,
}

/// Outcome of one budgeted rectifiability query
/// ([`SatValidityEngine::query`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ValidityVerdict {
    /// Some assignment of the freed candidates rectifies the test.
    Rectifiable,
    /// No assignment rectifies the test (the candidate set is invalid).
    NotRectifiable,
    /// The solver gave up on its conflict budget or deadline before a
    /// verdict; the caller should treat the set as unscreened.
    Unknown(Truncation),
}

impl<'c> SatValidityEngine<'c> {
    /// Encodes `circuit` with `candidates` freed.
    ///
    /// # Panics
    ///
    /// Panics if a candidate is a primary input.
    pub fn new(circuit: &'c Circuit, candidates: &[GateId]) -> SatValidityEngine<'c> {
        let mut freed = vec![false; circuit.len()];
        for &g in candidates {
            assert!(
                circuit.gate(g).kind() != GateKind::Input,
                "candidate {g} is a primary input"
            );
            freed[g.index()] = true;
        }
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..circuit.len())
            .map(|_| ClauseSink::new_var(&mut solver))
            .collect();
        for &id in circuit.topo_order() {
            let gate = circuit.gate(id);
            if gate.kind() == GateKind::Input || freed[id.index()] {
                continue;
            }
            let fanins: Vec<_> = gate
                .fanins()
                .iter()
                .map(|&f| vars[f.index()].positive())
                .collect();
            encode_gate(&mut solver, gate.kind(), vars[id.index()], &fanins, None);
        }
        SatValidityEngine {
            circuit,
            solver,
            vars,
        }
    }

    /// `true` if some assignment of the freed candidate values makes the
    /// test's designated output take its expected value.
    pub fn test_rectifiable(&mut self, test: &Test) -> bool {
        self.query(test) == ValidityVerdict::Rectifiable
    }

    /// [`SatValidityEngine::test_rectifiable`] with the budget-aware
    /// tri-state outcome: a solver that gives up (conflict budget or
    /// deadline, see [`SatValidityEngine::set_limits`]) reports
    /// [`ValidityVerdict::Unknown`] instead of silently conflating "gave
    /// up" with "not rectifiable".
    pub fn query(&mut self, test: &Test) -> ValidityVerdict {
        let mut assumptions: Vec<_> = self
            .circuit
            .inputs()
            .iter()
            .zip(&test.vector)
            .map(|(&pi, &v)| self.vars[pi.index()].lit(v))
            .collect();
        assumptions.push(self.vars[test.output.index()].lit(test.expected));
        match self.solver.solve(&assumptions) {
            SolveResult::Sat => ValidityVerdict::Rectifiable,
            SolveResult::Unsat => ValidityVerdict::NotRectifiable,
            SolveResult::Unknown => ValidityVerdict::Unknown(if self.solver.deadline_hit() {
                Truncation::Deadline
            } else {
                Truncation::Conflicts
            }),
        }
    }

    /// Installs a per-query conflict budget and/or an absolute wall
    /// deadline on the engine's solver (`None` = unlimited, the default).
    /// The conflict budget is deterministic; the deadline is not.
    pub fn set_limits(&mut self, conflicts: Option<u64>, deadline: Option<Instant>) {
        self.solver.set_conflict_budget(conflicts);
        self.solver.set_deadline(deadline);
    }

    /// Cumulative solver statistics across every query this engine ran —
    /// the real cost of SAT-backed validity screening, which callers
    /// aggregating per-run stats (the campaign's `auto` engine) must not
    /// drop on the floor.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

/// Exact validity check by SAT.
///
/// Builds one [`SatValidityEngine`] (circuit encoded once, candidates
/// freed) and checks every test under assumptions, stopping at the first
/// non-rectifiable test. Semantically identical to — and substantially
/// faster than — the seed's one-fresh-solver-per-test formulation.
pub fn is_valid_correction_sat(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    let mut engine = SatValidityEngine::new(circuit, candidates);
    tests.iter().all(|t| engine.test_rectifiable(t))
}

/// Minimum stolen tests per worker before the sharded SAT oracle fans
/// out. Every worker pays a full circuit encoding *and* starts with an
/// empty learnt-clause database, so with fewer tests per worker the
/// per-worker setup dominates and the shards run slower than the single
/// warm sequential engine. `BENCH_PR3.json` measured 0.23x at 4 workers
/// (32 tests, 620 gates: 0.29 ms sequential vs 1.27 ms sharded), and the
/// `validity.satpar.encodes` / `cnf.clauses` observability counters
/// attribute the ~1 ms slowdown to the `workers × encoding` term plus
/// pool spawn — versus warm assumption queries at ~8 µs each, which puts
/// break-even near 50 tests per worker for propagation-dominated
/// workloads (see ARCHITECTURE.md, "Observability"). Conflict-heavy
/// query mixes amortise sooner, but the guard is calibrated to the
/// measured regime.
pub const PAR_MIN_TESTS_PER_WORKER: usize = 64;

/// [`is_valid_correction_sat`] with the per-test SAT instances sharded
/// across a worker pool.
///
/// Each worker holds its own [`SatValidityEngine`] (one encoding per
/// worker, not per test) and steals test indices off the shared queue;
/// verdicts are collected in test order and conjoined. Because every
/// per-test verdict is exact, the result is bit-identical to the
/// sequential oracle for any worker count — this is the ROADMAP's
/// "per-test instance sharding for the validity `_sat` oracle".
///
/// Sharding is work-gated even under [`Parallelism::Fixed`]: unless every
/// worker would steal at least [`PAR_MIN_TESTS_PER_WORKER`] tests, the
/// call runs the sequential engine instead (same verdict, and measurably
/// faster — see [`PAR_MIN_TESTS_PER_WORKER`]).
pub fn is_valid_correction_sat_par(
    circuit: &Circuit,
    tests: &TestSet,
    candidates: &[GateId],
    parallelism: Parallelism,
) -> bool {
    gatediag_obs::count("validity.satpar.calls", 1);
    // Only fan out when the per-test solves plausibly dwarf the per-worker
    // setup cost: each worker re-encodes the circuit (O(gates) clauses)
    // and re-learns its clauses from scratch, so it needs a minimum
    // number of tests to amortise that.
    let work = tests.len().saturating_mul(circuit.len()).saturating_mul(8);
    let workers = parallelism
        .workers_for(tests.len(), work, gatediag_sim::AUTO_WORK_FLOOR)
        .min(tests.len() / PAR_MIN_TESTS_PER_WORKER);
    if workers <= 1 {
        return is_valid_correction_sat(circuit, tests, candidates);
    }
    gatediag_obs::count("validity.satpar.encodes", workers as u64);
    // Cross-worker early exit, mirroring the sequential oracle's short
    // circuit: once any worker finds a non-rectifiable test the overall
    // conjunction is false, so remaining stolen tests are skipped. The
    // skip only ever happens after a genuine `false` verdict is recorded,
    // so the conjunction — the only published output — is unaffected.
    let failed = std::sync::atomic::AtomicBool::new(false);
    let verdicts = parallel_map_init(
        workers,
        tests.len(),
        || SatValidityEngine::new(circuit, candidates),
        |engine, i| {
            if failed.load(std::sync::atomic::Ordering::Relaxed) {
                return false; // don't-care: a real failure is already recorded
            }
            let ok = engine.test_rectifiable(&tests.tests()[i]);
            if !ok {
                failed.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            ok
        },
    );
    verdicts.into_iter().all(|v| v)
}

/// Screens many candidate sets with the SAT oracle in parallel: one
/// worker per stolen set, each building a [`SatValidityEngine`] for its
/// current set and early-exiting on the first non-rectifiable test.
/// Verdicts are returned in input order and are bit-identical for every
/// worker count.
pub fn screen_valid_corrections_sat(
    circuit: &Circuit,
    tests: &TestSet,
    candidate_sets: &[Vec<GateId>],
    parallelism: Parallelism,
) -> Vec<bool> {
    let work = candidate_sets
        .len()
        .saturating_mul(circuit.len())
        .saturating_mul(tests.len().max(1));
    let workers =
        parallelism.workers_for(candidate_sets.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    parallel_map_init(
        workers,
        candidate_sets.len(),
        || (),
        |(), i| is_valid_correction_sat(circuit, tests, &candidate_sets[i]),
    )
}

/// Screens many candidate sets with the *auto-dispatching* oracle in
/// parallel: one [`ValidityOracle`] per worker (primed sim engine as the
/// fast path, SAT for large sets), work-stealing over the sets, verdicts
/// in input order — bit-identical for every worker count.
pub fn screen_valid_corrections(
    circuit: &Circuit,
    tests: &TestSet,
    candidate_sets: &[Vec<GateId>],
    parallelism: Parallelism,
) -> Vec<bool> {
    let work = candidate_sets
        .len()
        .saturating_mul(circuit.len())
        .saturating_mul(tests.len().max(1));
    let workers =
        parallelism.workers_for(candidate_sets.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    parallel_map_init(
        workers,
        candidate_sets.len(),
        || ValidityOracle::new(circuit),
        |oracle, i| oracle.is_valid(tests, &candidate_sets[i]),
    )
}

/// Outcome of a budgeted batch screen
/// ([`screen_valid_corrections_metered`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScreenOutcome {
    /// Verdicts for the *screened prefix* of the input sets, in input
    /// order. Shorter than the input only under `Work` or `Deadline`
    /// truncation (unscreened sets have no verdict at all — the caller
    /// must not report them, so always zip against this list rather than
    /// the input). A `Conflicts` truncation does **not** shorten the
    /// list: the set whose query gave up is conservatively screened as
    /// invalid, and the reason is recorded here.
    pub verdicts: Vec<bool>,
    /// SAT statistics accumulated over every screened set, in input
    /// order (all zero when only the simulation backend ran).
    pub stats: SolverStats,
    /// Why screening stopped early, if it did.
    pub truncation: Option<Truncation>,
    /// Deterministic work charged: the number of sets screened.
    pub work: u64,
}

/// [`screen_valid_corrections`] under a cooperative [`Budget`], reporting
/// SAT statistics and truncation — the campaign-grade batch screen.
///
/// The deterministic work unit is **one candidate set screened**: a work
/// budget truncates the set list to a prefix before the fan-out, so the
/// verdict prefix is bit-identical for every worker count. The SAT
/// conflict budget applies per rectifiability query inside each screened
/// set (a set whose query gives up screens as *invalid*, with the reason
/// recorded — deterministic, since the CDCL search is). The wall deadline
/// stops between sets (nondeterministic, opt-in). `backend` pins the
/// validity backend, or [`ValidityBackend::Auto`] to dispatch per set.
pub fn screen_valid_corrections_metered(
    circuit: &Circuit,
    tests: &TestSet,
    candidate_sets: &[Vec<GateId>],
    parallelism: Parallelism,
    backend: ValidityBackend,
    budget: &Budget,
) -> ScreenOutcome {
    let meter = budget.meter();
    let screened = usize::try_from(meter.remaining_work())
        .unwrap_or(usize::MAX)
        .min(candidate_sets.len());
    let work_truncated = screened < candidate_sets.len();
    // The work unit here is *sets*, not conflicts, so only the explicit
    // conflict budget caps the per-query SAT searches.
    let conflicts = budget.conflicts;
    let deadline = meter.deadline();
    let work_estimate = screened
        .saturating_mul(circuit.len())
        .saturating_mul(tests.len().max(1));
    let workers = parallelism.workers_for(screened, work_estimate, gatediag_sim::AUTO_WORK_FLOOR);
    let per_set = parallel_map_init_while(
        workers,
        screened,
        || {
            let mut oracle = ValidityOracle::with_backend(circuit, backend);
            oracle.set_limits(conflicts, deadline);
            oracle
        },
        |oracle, i| {
            let verdict = oracle.is_valid(tests, &candidate_sets[i]);
            (verdict, oracle.take_stats(), oracle.take_truncation())
        },
        || deadline.is_none_or(|d| Instant::now() < d),
    );
    let mut verdicts = Vec::with_capacity(screened);
    let mut stats = SolverStats::default();
    let mut truncation: Option<Truncation> = None;
    let mut deadline_hit = false;
    for entry in per_set {
        let Some((verdict, set_stats, set_truncation)) = entry else {
            // Deadline between sets: keep the contiguous verdict prefix.
            deadline_hit = true;
            break;
        };
        verdicts.push(verdict);
        stats.absorb(&set_stats);
        if truncation.is_none() {
            truncation = set_truncation;
        }
    }
    let work = verdicts.len() as u64;
    ScreenOutcome {
        verdicts,
        stats,
        truncation: if deadline_hit {
            Some(Truncation::Deadline)
        } else if work_truncated {
            Some(Truncation::Work)
        } else {
            truncation
        },
        work,
    }
}

/// Which validity oracle a call should use.
///
/// The two oracles are exact and always agree (property-tested), so the
/// backend only trades time: forced-value simulation is exponential in
/// `|C|` but touches only the candidates' fan-out cones, while SAT scales
/// to large `C` but pays a circuit-sized encoding and CDCL search per
/// test. [`ValidityBackend::Auto`] picks per call from `|C|`, the
/// candidates' fan-out cone size and the test count — so callers no
/// longer hardcode `_sim` vs `_sat`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ValidityBackend {
    /// Choose per call (see [`resolve_validity_backend`]).
    #[default]
    Auto,
    /// Always forced-value simulation (panics if `|C| > 16`).
    Sim,
    /// Always the per-test SAT oracle.
    Sat,
}

/// Largest candidate set the simulation oracle accepts (`2^16`
/// combinations per test).
pub const SIM_MAX_CANDIDATES: usize = 16;

/// Cost-model constant: a per-test SAT solve is charged roughly this many
/// scalar operations per circuit gate (encoding amortised, CDCL search
/// included). Calibrated coarsely from `bench_pr3`; only the crossover
/// matters, not the absolute value.
const SAT_COST_PER_GATE: u64 = 48;

/// Resolves [`ValidityBackend::Auto`] for one call: `Sim` or `Sat`.
///
/// `Sim` is the fast path whenever it is feasible and its exponential
/// term stays small: the per-test cost model is
/// `ceil(2^|C| / 1024) · cone(C)` for simulation (1024 = lanes per
/// incremental sweep) versus `SAT_COST_PER_GATE · gates` for SAT. The
/// test count multiplies both sides equally and therefore drops out of
/// the comparison; it still decides ties for empty test sets (trivially
/// `Sim`).
pub fn resolve_validity_backend(
    circuit: &Circuit,
    _tests: &TestSet,
    candidates: &[GateId],
) -> ValidityBackend {
    if candidates.len() > SIM_MAX_CANDIDATES {
        return ValidityBackend::Sat;
    }
    if candidates.len() <= 10 {
        // At most one 1024-lane sweep per test: simulation never loses.
        return ValidityBackend::Sim;
    }
    let combos = 1u64 << candidates.len();
    let sweeps = combos.div_ceil(64 * SCREEN_WORDS as u64);
    let cone = fanout_cone_size(circuit, candidates) as u64;
    let sim_cost = sweeps.saturating_mul(cone.max(1));
    let sat_cost = SAT_COST_PER_GATE.saturating_mul(circuit.len() as u64);
    if sim_cost <= sat_cost {
        ValidityBackend::Sim
    } else {
        ValidityBackend::Sat
    }
}

/// Number of gates in the union of the candidates' fan-out cones — the
/// region an incremental forced-value sweep actually re-simulates.
fn fanout_cone_size(circuit: &Circuit, candidates: &[GateId]) -> usize {
    let mut visited = vec![false; circuit.len()];
    let mut stack: Vec<GateId> = Vec::new();
    for &g in candidates {
        if !visited[g.index()] {
            visited[g.index()] = true;
            stack.push(g);
        }
    }
    let mut size = 0usize;
    while let Some(id) = stack.pop() {
        size += 1;
        for &f in circuit.fanouts(id) {
            if !visited[f.index()] {
                visited[f.index()] = true;
                stack.push(f);
            }
        }
    }
    size
}

/// Exact validity with automatic backend dispatch.
///
/// Equivalent to both [`SimValidityEngine::is_valid`] and
/// [`is_valid_correction_sat`] (the oracles agree on every input); the
/// backend is chosen by [`resolve_validity_backend`]. One-shot
/// convenience — loops over many candidate sets should hold a
/// [`ValidityOracle`] instead.
pub fn is_valid_correction(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
    ValidityOracle::new(circuit).is_valid(tests, candidates)
}

/// A reusable auto-dispatching validity oracle.
///
/// Owns a primed [`SimValidityEngine`] as the fast path and falls back to
/// the per-test SAT oracle when [`resolve_validity_backend`] (or an
/// explicit [`ValidityBackend`]) says so. Cross-candidate loops keep the
/// simulation engine's incremental baseline warm across calls exactly
/// like holding a bare `SimValidityEngine`, but large candidate sets no
/// longer panic — they transparently route to SAT.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, ValidityOracle};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let mut oracle = ValidityOracle::new(&faulty);
/// assert!(oracle.is_valid(&tests, &[sites[0].gate]));
/// ```
#[derive(Debug)]
pub struct ValidityOracle<'c> {
    circuit: &'c Circuit,
    sim: SimValidityEngine<'c>,
    backend: ValidityBackend,
    /// Per-query conflict budget for the SAT backend (`None` = unlimited).
    conflicts: Option<u64>,
    /// Absolute wall deadline for the SAT backend (nondeterministic,
    /// opt-in — the simulation backend checkpoints at the screen level
    /// instead, between candidate sets).
    deadline: Option<Instant>,
    /// SAT statistics accumulated across calls since the last
    /// [`ValidityOracle::take_stats`].
    stats: SolverStats,
    /// Whether a call gave up on its budget since the last
    /// [`ValidityOracle::take_truncation`].
    truncation: Option<Truncation>,
}

impl<'c> ValidityOracle<'c> {
    /// Creates an auto-dispatching oracle for `circuit`.
    pub fn new(circuit: &'c Circuit) -> ValidityOracle<'c> {
        ValidityOracle::with_backend(circuit, ValidityBackend::Auto)
    }

    /// Creates an oracle pinned to (or auto-dispatching from) `backend`.
    pub fn with_backend(circuit: &'c Circuit, backend: ValidityBackend) -> ValidityOracle<'c> {
        ValidityOracle {
            circuit,
            sim: SimValidityEngine::new(circuit),
            backend,
            conflicts: None,
            deadline: None,
            stats: SolverStats::default(),
            truncation: None,
        }
    }

    /// Installs a per-query SAT conflict budget and/or an absolute wall
    /// deadline on the oracle (`None` = unlimited). A SAT query that gives
    /// up makes [`ValidityOracle::is_valid`] answer `false` (conservative:
    /// an unproven correction is not reported valid) and records the
    /// reason, retrievable via [`ValidityOracle::take_truncation`].
    pub fn set_limits(&mut self, conflicts: Option<u64>, deadline: Option<Instant>) {
        self.conflicts = conflicts;
        self.deadline = deadline;
    }

    /// SAT statistics accumulated across calls since the last take;
    /// resets the accumulator. All zero when only the simulation backend
    /// ran.
    pub fn take_stats(&mut self) -> SolverStats {
        std::mem::take(&mut self.stats)
    }

    /// The budget reason some call gave up on since the last take, if
    /// any; resets the flag.
    pub fn take_truncation(&mut self) -> Option<Truncation> {
        self.truncation.take()
    }

    /// The backend a call with these arguments would use.
    pub fn backend_for(&self, tests: &TestSet, candidates: &[GateId]) -> ValidityBackend {
        match self.backend {
            ValidityBackend::Auto => resolve_validity_backend(self.circuit, tests, candidates),
            pinned => pinned,
        }
    }

    /// Exact validity of `candidates` for `tests`.
    ///
    /// # Panics
    ///
    /// Panics if a candidate is a primary input, or if the oracle is
    /// pinned to [`ValidityBackend::Sim`] with more than
    /// [`SIM_MAX_CANDIDATES`] candidates.
    pub fn is_valid(&mut self, tests: &TestSet, candidates: &[GateId]) -> bool {
        match self.backend_for(tests, candidates) {
            ValidityBackend::Sim | ValidityBackend::Auto => {
                gatediag_obs::count("validity.dispatch.sim", 1);
                self.sim.is_valid(tests, candidates)
            }
            ValidityBackend::Sat => {
                gatediag_obs::count("validity.dispatch.sat", 1);
                let mut engine = SatValidityEngine::new(self.circuit, candidates);
                engine.set_limits(self.conflicts, self.deadline);
                let mut valid = true;
                for test in tests {
                    match engine.query(test) {
                        ValidityVerdict::Rectifiable => {}
                        ValidityVerdict::NotRectifiable => {
                            valid = false;
                            break;
                        }
                        ValidityVerdict::Unknown(reason) => {
                            // Conservative: an unproven correction is not
                            // valid; the caller can distinguish "refuted"
                            // from "gave up" via `take_truncation`.
                            self.truncation.get_or_insert(reason);
                            valid = false;
                            break;
                        }
                    }
                }
                self.stats.absorb(&engine.stats());
                valid
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    /// Fresh-engine simulation verdict (what the deprecated
    /// `is_valid_correction_sim` wrapper computes).
    fn sim_valid(circuit: &Circuit, tests: &TestSet, candidates: &[GateId]) -> bool {
        SimValidityEngine::new(circuit).is_valid(tests, candidates)
    }

    #[test]
    fn error_sites_are_always_a_valid_correction() {
        for seed in 0..5 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 2, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let gates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
            assert!(
                sim_valid(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by sim oracle"
            );
            assert!(
                is_valid_correction_sat(&faulty, &tests, &gates),
                "seed {seed}: real error sites rejected by SAT oracle"
            );
        }
    }

    #[test]
    fn oracles_agree_on_random_candidate_sets() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(5, 2, 30).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 6, seed, 4096);
            if tests.is_empty() {
                continue;
            }
            let functional: Vec<GateId> = faulty
                .iter()
                .filter(|(_, g)| !g.kind().is_source())
                .map(|(id, _)| id)
                .collect();
            for _ in 0..20 {
                let size = 1 + (seed as usize % 3);
                let candidates: Vec<GateId> = functional
                    .choose_multiple(&mut rng, size)
                    .copied()
                    .collect();
                let sim = sim_valid(&faulty, &tests, &candidates);
                let sat = is_valid_correction_sat(&faulty, &tests, &candidates);
                assert_eq!(sim, sat, "oracles disagree on {candidates:?}");
            }
        }
    }

    #[test]
    fn validity_is_monotone() {
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 11);
        let tests = generate_failing_tests(&golden, &faulty, 8, 11, 4096);
        let base = vec![sites[0].gate];
        assert!(sim_valid(&faulty, &tests, &base));
        for (id, g) in faulty.iter() {
            if g.kind().is_source() || id == sites[0].gate {
                continue;
            }
            let superset = vec![sites[0].gate, id];
            assert!(
                sim_valid(&faulty, &tests, &superset),
                "superset {superset:?} lost validity"
            );
        }
    }

    #[test]
    fn empty_candidates_valid_iff_tests_pass() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 4, 3, 4096);
        assert!(!tests.is_empty());
        // Failing tests cannot be rectified by changing nothing.
        assert!(!sim_valid(&faulty, &tests, &[]));
        assert!(!is_valid_correction_sat(&faulty, &tests, &[]));
        // An empty test set is trivially rectified.
        assert!(sim_valid(&faulty, &TestSet::default(), &[]));
        assert!(is_valid_correction_sat(&faulty, &TestSet::default(), &[]));
    }

    #[test]
    fn reused_engine_matches_fresh_engines() {
        // One engine across many candidate sets — including repartitions
        // (|C| crossing the 6-candidate word boundary) — must agree with
        // a fresh engine per call.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(2).generate();
        let (faulty, _) = inject_errors(&golden, 2, 2);
        let tests = generate_failing_tests(&golden, &faulty, 8, 2, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut engine = SimValidityEngine::new(&faulty);
        for round in 0..30 {
            let size = [0usize, 1, 2, 3, 7][round % 5];
            let candidates: Vec<GateId> = functional
                .choose_multiple(&mut rng, size.min(functional.len()))
                .copied()
                .collect();
            assert_eq!(
                engine.is_valid(&tests, &candidates),
                sim_valid(&faulty, &tests, &candidates),
                "round {round}: reused engine drifted on {candidates:?}"
            );
        }
    }

    #[test]
    fn batch_screening_matches_per_set_verdicts() {
        use gatediag_sim::Parallelism;
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(4).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 4);
        let tests = generate_failing_tests(&golden, &faulty, 8, 4, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut sets: Vec<Vec<GateId>> = functional.iter().map(|&g| vec![g]).collect();
        sets.push(sites.iter().map(|s| s.gate).collect());
        sets.push(Vec::new());
        let expected: Vec<bool> = sets.iter().map(|s| sim_valid(&faulty, &tests, s)).collect();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
            Parallelism::Fixed(sets.len() + 5),
        ] {
            assert_eq!(
                screen_valid_corrections_sim(&faulty, &tests, &sets, parallelism),
                expected,
                "verdicts drifted at {parallelism:?}"
            );
        }
        // Empty batch.
        assert!(
            screen_valid_corrections_sim(&faulty, &tests, &[], Parallelism::Fixed(4)).is_empty()
        );
    }

    #[test]
    fn deprecated_wrapper_still_matches_engine() {
        // The back-compat wrapper must stay bit-identical to holding an
        // engine explicitly for as long as it exists.
        #![allow(deprecated)]
        let golden = c17();
        let (faulty, sites) = inject_errors(&golden, 1, 9);
        let tests = generate_failing_tests(&golden, &faulty, 6, 9, 4096);
        let gates = vec![sites[0].gate];
        assert_eq!(
            is_valid_correction_sim(&faulty, &tests, &gates),
            sim_valid(&faulty, &tests, &gates)
        );
    }

    #[test]
    fn sat_engine_reuse_matches_fresh_oracle() {
        // One engine across all tests (assumption-based) must agree with
        // the per-test definition on every test individually.
        for seed in 0..4 {
            let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 8192);
            if tests.is_empty() {
                continue;
            }
            let gates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
            let mut engine = SatValidityEngine::new(&faulty, &gates);
            for (i, t) in tests.iter().enumerate() {
                let single: TestSet = std::iter::once(t.clone()).collect();
                assert_eq!(
                    engine.test_rectifiable(t),
                    sim_valid(&faulty, &single, &gates),
                    "seed {seed} test {i}: SAT engine drifted from sim oracle"
                );
            }
        }
    }

    #[test]
    fn sharded_sat_oracle_is_worker_count_invariant() {
        use gatediag_sim::Parallelism;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(55);
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(3).generate();
        let (faulty, _) = inject_errors(&golden, 2, 3);
        let tests = generate_failing_tests(&golden, &faulty, 8, 3, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        for round in 0..8 {
            let size = 1 + round % 3;
            let candidates: Vec<GateId> = functional
                .choose_multiple(&mut rng, size)
                .copied()
                .collect();
            let sequential = is_valid_correction_sat(&faulty, &tests, &candidates);
            for workers in [1usize, 2, 4, 8] {
                assert_eq!(
                    is_valid_correction_sat_par(
                        &faulty,
                        &tests,
                        &candidates,
                        Parallelism::Fixed(workers)
                    ),
                    sequential,
                    "round {round}: {workers}-worker SAT oracle drifted on {candidates:?}"
                );
            }
        }
        // Empty test set: trivially valid, also when sharded.
        assert!(is_valid_correction_sat_par(
            &faulty,
            &TestSet::default(),
            &functional[..1],
            Parallelism::Fixed(4)
        ));
    }

    #[test]
    fn sharded_sat_oracle_is_work_gated_and_counted() {
        // The BENCH_PR3 regression fix, pinned by the observability
        // counters: a call with fewer than PAR_MIN_TESTS_PER_WORKER tests
        // per worker must run the warm sequential engine (one encoding,
        // no fan-out), and a call over the threshold must fan out with
        // exactly `workers` encodings — both with identical verdicts.
        use gatediag_sim::Parallelism;
        let golden = RandomCircuitSpec::new(10, 3, 60).seed(17).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 17);
        let tests = generate_failing_tests(&golden, &faulty, 256, 17, 1 << 10);
        assert!(
            tests.len() >= 2 * PAR_MIN_TESTS_PER_WORKER,
            "need {} failing tests to cross the sharding gate, got {}",
            2 * PAR_MIN_TESTS_PER_WORKER,
            tests.len()
        );
        let gates: Vec<GateId> = sites.iter().map(|s| s.gate).collect();
        let sequential = is_valid_correction_sat(&faulty, &tests, &gates);
        let counter = |trace: &gatediag_obs::ObsTrace, name: &str| {
            trace
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        // Over the threshold at 2 workers: the shards really fan out, and
        // every worker pays one circuit encoding.
        let sink = std::sync::Arc::new(gatediag_obs::Sink::new());
        let guard = gatediag_obs::install(sink.clone());
        assert_eq!(
            is_valid_correction_sat_par(&faulty, &tests, &gates, Parallelism::Fixed(2)),
            sequential
        );
        drop(guard);
        let sharded = sink.take_trace();
        assert_eq!(counter(&sharded, "validity.satpar.calls"), 1);
        assert_eq!(counter(&sharded, "validity.satpar.encodes"), 2);
        // Under the threshold (a prefix too small for even two shards):
        // the guard routes to the sequential engine — no extra encodings.
        let small: TestSet = tests
            .iter()
            .take(PAR_MIN_TESTS_PER_WORKER)
            .cloned()
            .collect();
        let small_expected = is_valid_correction_sat(&faulty, &small, &gates);
        let sink = std::sync::Arc::new(gatediag_obs::Sink::new());
        let guard = gatediag_obs::install(sink.clone());
        assert_eq!(
            is_valid_correction_sat_par(&faulty, &small, &gates, Parallelism::Fixed(4)),
            small_expected
        );
        drop(guard);
        let gated = sink.take_trace();
        assert_eq!(counter(&gated, "validity.satpar.calls"), 1);
        assert_eq!(counter(&gated, "validity.satpar.encodes"), 0);
        // The attribution itself: the sharded call multiplies the CNF
        // work — strictly more clauses encoded than the gated call for
        // the same candidate set.
        assert!(counter(&sharded, "cnf.clauses") > counter(&gated, "cnf.clauses"));
    }

    #[test]
    fn sat_batch_screening_matches_per_set_verdicts() {
        use gatediag_sim::Parallelism;
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(4).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 4);
        let tests = generate_failing_tests(&golden, &faulty, 6, 4, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .take(12)
            .collect();
        let mut sets: Vec<Vec<GateId>> = functional.iter().map(|&g| vec![g]).collect();
        sets.push(sites.iter().map(|s| s.gate).collect());
        let expected: Vec<bool> = sets
            .iter()
            .map(|s| is_valid_correction_sat(&faulty, &tests, s))
            .collect();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
        ] {
            assert_eq!(
                screen_valid_corrections_sat(&faulty, &tests, &sets, parallelism),
                expected,
                "SAT screening drifted at {parallelism:?}"
            );
        }
    }

    #[test]
    fn auto_dispatch_agrees_with_both_backends() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(91);
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(6).generate();
        let (faulty, _) = inject_errors(&golden, 1, 6);
        let tests = generate_failing_tests(&golden, &faulty, 6, 6, 8192);
        if tests.is_empty() {
            return;
        }
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .collect();
        let mut auto = ValidityOracle::new(&faulty);
        let mut pinned_sat = ValidityOracle::with_backend(&faulty, ValidityBackend::Sat);
        for round in 0..12 {
            let size = [0usize, 1, 2, 3][round % 4];
            let candidates: Vec<GateId> = functional
                .choose_multiple(&mut rng, size.min(functional.len()))
                .copied()
                .collect();
            let expected = sim_valid(&faulty, &tests, &candidates);
            assert_eq!(auto.is_valid(&tests, &candidates), expected, "auto drifted");
            assert_eq!(
                pinned_sat.is_valid(&tests, &candidates),
                expected,
                "pinned SAT drifted"
            );
            assert_eq!(
                is_valid_correction(&faulty, &tests, &candidates),
                expected,
                "one-shot dispatcher drifted"
            );
        }
    }

    #[test]
    fn auto_dispatch_routes_large_sets_to_sat() {
        // > SIM_MAX_CANDIDATES would panic the sim engine; the dispatcher
        // must route to SAT instead of panicking.
        let golden = RandomCircuitSpec::new(6, 3, 60).seed(8).generate();
        let (faulty, _) = inject_errors(&golden, 1, 8);
        let tests = generate_failing_tests(&golden, &faulty, 4, 8, 8192);
        let functional: Vec<GateId> = faulty
            .iter()
            .filter(|(_, g)| !g.kind().is_source())
            .map(|(id, _)| id)
            .take(SIM_MAX_CANDIDATES + 4)
            .collect();
        assert!(functional.len() > SIM_MAX_CANDIDATES);
        assert_eq!(
            resolve_validity_backend(&faulty, &tests, &functional),
            ValidityBackend::Sat
        );
        // Freeing that many gates of a small circuit rectifies everything.
        let mut oracle = ValidityOracle::new(&faulty);
        assert_eq!(
            oracle.is_valid(&tests, &functional),
            is_valid_correction_sat(&faulty, &tests, &functional)
        );
        // Small sets resolve to the sim fast path.
        assert_eq!(
            resolve_validity_backend(&faulty, &tests, &functional[..2]),
            ValidityBackend::Sim
        );
    }

    #[test]
    fn forcing_output_gate_is_always_valid() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 2, 6);
        let tests = generate_failing_tests(&golden, &faulty, 8, 6, 4096);
        // Freeing every erroneous output gate rectifies trivially (if the
        // outputs are functional gates, which c17's are).
        let mut outs: Vec<GateId> = tests.iter().map(|t| t.output).collect();
        outs.sort();
        outs.dedup();
        assert!(sim_valid(&faulty, &tests, &outs));
        assert!(is_valid_correction_sat(&faulty, &tests, &outs));
    }
}
