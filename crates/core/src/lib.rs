//! `gatediag-core`: the diagnosis engines of "On the Relation Between
//! Simulation-based and SAT-based Diagnosis" (Fey, Safarpour, Veneris,
//! Drechsler — DATE 2006).
//!
//! Given a faulty circuit and a set of failing [`Test`]s, three basic
//! engines locate candidate error gates:
//!
//! | engine | function | guarantees | paper |
//! |--------|----------|------------|-------|
//! | BSIM | [`basic_sim_diagnose`] | marks sensitised paths, no validity | Fig. 1 |
//! | COV | [`sc_diagnose`] | irredundant covers ≤ k, no validity | Fig. 4 |
//! | BSAT | [`basic_sat_diagnose`] | exactly all irredundant *valid* corrections ≤ k | Fig. 3 |
//!
//! plus the advanced variants the paper discusses (dominator two-pass and
//! test-set partitioning for SAT, [`sim_backtrack_diagnose`] with
//! resimulation effect analysis for simulation) and the Sec. 6 hybrids
//! ([`hybrid_seeded_bsat`], [`repair_correction`]).
//!
//! Two exact validity oracles (simulation: [`SimValidityEngine`]; SAT:
//! [`is_valid_correction_sat`]), an auto-dispatching front door
//! ([`is_valid_correction`] / [`ValidityOracle`] — pick the backend from
//! `|C|`, cone size and test count instead of hardcoding one) and a
//! [`brute_force_diagnose`] ground truth
//! make the paper's Lemmas 1-4 and Theorems 1-2 executable; the
//! [`paper_examples`] module ships the Fig. 5 witness circuits.
//!
//! # Parallel diagnosis
//!
//! The simulation-based flows are embarrassingly parallel across
//! *independent candidate cones and test batches*: every diagnosis
//! option struct carries a [`Parallelism`] knob that shards its work over
//! a scoped worker pool (one reusable engine per worker, work-stealing
//! over a shared index — see [`gatediag_sim::parallel_map_init`]).
//! Results are **bit-identical for every thread count**; drift tests and
//! property tests pin this. Cross-candidate loops should reuse one
//! [`ValidityOracle`] per thread (or batch-screen with
//! [`screen_valid_corrections_sim`] / [`screen_valid_corrections_sat`])
//! instead of paying a fresh engine's per-call buffer setup. The SAT
//! side shards too: the validity `_sat` oracle fans its independent
//! per-test instances out with [`is_valid_correction_sat_par`], and
//! [`BsatOptions::parallelism`] parallelizes the BSAT instance build.
//!
//! # Examples
//!
//! Diagnose a 3-gate circuit end to end: path-trace candidates, validate
//! them, and recover the concrete repair.
//!
//! ```
//! use gatediag_core::{
//!     basic_sim_diagnose, find_kind_repairs, is_valid_correction, BsimOptions, Test, TestSet,
//! };
//! use gatediag_netlist::{CircuitBuilder, GateKind};
//!
//! // A 3-gate faulty design: y = AND(NOT(a), b) where the golden design
//! // wanted y = OR(NOT(a), b).
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let bb = b.input("b");
//! let n = b.gate(GateKind::Not, vec![a], "n");
//! let y = b.gate(GateKind::And, vec![n, bb], "y");
//! b.output(y);
//! let faulty = b.finish().unwrap();
//!
//! // a = 1, b = 1 distinguishes the designs: the golden OR(0, 1) = 1,
//! // the faulty AND(0, 1) = 0 — so (vector [1,1], output y, expected 1)
//! // is a failing test.
//! let tests = TestSet::new(vec![Test { vector: vec![true, true], output: y, expected: true }]);
//!
//! // BSIM marks candidates along sensitised paths from y.
//! let marked = basic_sim_diagnose(&faulty, &tests, BsimOptions::default());
//! assert!(marked.union.contains(y));
//! // The faulty gate alone is a valid correction, and library
//! // resynthesis recovers OR as one concrete repair.
//! assert!(is_valid_correction(&faulty, &tests, &[y]));
//! let repairs = find_kind_repairs(&faulty, &tests, &[y]);
//! assert!(repairs.contains(&vec![(y, GateKind::Or)]));
//! ```
//!
//! SAT-based diagnosis on the paper's workloads:
//!
//! ```
//! use gatediag_core::{basic_sat_diagnose, generate_failing_tests, BsatOptions};
//! use gatediag_netlist::{c17, inject_errors};
//!
//! // Inject an error, collect failing tests, diagnose.
//! let golden = c17();
//! let (faulty, sites) = inject_errors(&golden, 1, 42);
//! let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
//! let result = basic_sat_diagnose(&faulty, &tests, 1, BsatOptions::default());
//! // The real error site is among the size-1 corrections.
//! assert!(result.solutions.contains(&vec![sites[0].gate]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bruteforce;
mod bsat;
mod bsim;
pub mod budget;
pub mod chaos;
mod cov;
mod engine;
mod hybrid;
pub mod json;
pub mod paper_examples;
mod quality;
mod repair;
mod sequential;
pub mod session;
mod sim_backtrack;
mod test_set;
pub mod testgen;
mod validity;

pub use bruteforce::brute_force_diagnose;
pub use bsat::{
    basic_sat_diagnose, conflicting_test_core, partitioned_sat_diagnose, two_pass_sat_diagnose,
    BsatOptions, BsatResult, SiteSelection,
};
pub use bsim::{
    basic_sim_diagnose, path_trace, path_trace_packed, BsimOptions, BsimResult, MarkPolicy,
};
pub use budget::{Budget, BudgetMeter, Truncation};
pub use chaos::{ChaosConfig, ChaosEvent, ChaosPolicy};
pub use cov::{cover_all, sc_diagnose, CovEngine, CovOptions, CovResult};
pub use engine::{run_engine, run_sequential_engine, EngineConfig, EngineKind, EngineRun};
pub use hybrid::{hybrid_seeded_bsat, repair_correction, RepairOutcome};
pub use quality::{bsim_quality, solution_quality, BsimQuality, SolutionQuality};
pub use repair::{
    correction_observations, find_kind_repairs, find_kind_repairs_par, FunctionObservation,
    KindRepair,
};
pub use sequential::{
    generate_failing_sequences, is_valid_sequential_correction, real_inputs,
    sequence_tests_to_unrolled, sequential_sat_diagnose, sequential_sim_diagnose,
    simulate_sequence, SeqBsatOptions, SeqDiagnosis, SeqValidityOracle, SequenceTest,
    SequenceTestSet,
};
pub use session::{
    circuit_content_hash, run_diagnose, validate_frames, validate_seq_len, CircuitSession,
    DiagnoseOutcome, DiagnoseRequest, DiagnoseStatus, MAX_FRAMES, MAX_SEQ_LEN,
};
pub use sim_backtrack::{sim_backtrack_diagnose, SimBacktrackOptions};
pub use test_set::{generate_failing_tests, Test, TestSet};
pub use testgen::{
    distinguish_pair, generate_discriminating_tests, PairOutcome, TestGenOutcome, TestGenPolicy,
};
#[allow(deprecated)]
pub use validity::is_valid_correction_sim;
pub use validity::{
    is_valid_correction, is_valid_correction_sat, is_valid_correction_sat_par,
    resolve_validity_backend, screen_valid_corrections, screen_valid_corrections_metered,
    screen_valid_corrections_sat, screen_valid_corrections_sim, SatValidityEngine, ScreenOutcome,
    SimValidityEngine, ValidityBackend, ValidityOracle, ValidityVerdict, PAR_MIN_TESTS_PER_WORKER,
    SIM_MAX_CANDIDATES,
};

// The thread-count policy for the parallel diagnosis entry points lives
// in the simulation crate (next to the worker pool); re-export it so core
// users configure parallelism without an extra dependency.
pub use gatediag_sim::Parallelism;

// Re-export the option/encoding types used in this crate's public API so
// downstream users need not depend on the encoding crate directly.
pub use gatediag_cnf::MuxEncoding;
pub use gatediag_sat::SolverStats;
