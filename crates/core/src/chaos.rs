//! Deterministic chaos/fault injection for engine runs.
//!
//! The fault-tolerant campaign layer (isolated pool, retry policy,
//! autosave checkpoints) is only trustworthy if its failure paths are
//! exercised, and real failures are too rare and too nondeterministic to
//! test against. This module injects *synthetic* failures instead —
//! panics, artificial work inflation, spurious preemptions — keyed off a
//! seeded hash of the instance identity, never off wall clock or thread
//! schedule. The same `(seed, key)` pair always makes the same decision,
//! so a chaos campaign is exactly as reproducible as a clean one: the
//! drift tests can assert byte-identical reports across worker counts
//! *with failures in them*, and a retry can be given a fresh key (the
//! attempt number is hashed in) so injected failures are transient the
//! way real ones are.
//!
//! # Examples
//!
//! ```
//! use gatediag_core::{ChaosConfig, ChaosEvent, ChaosPolicy};
//!
//! let config = ChaosConfig { seed: 7, rate_ppm: 500_000 };
//! let policy = ChaosPolicy::new(config, ChaosPolicy::key(&["c17", "bsat", "1"]));
//! // Same key, same verdict — forever.
//! assert_eq!(policy.decide(), policy.decide());
//! // No chaos configured means no events, for any key.
//! assert_eq!(ChaosPolicy::off().decide(), None);
//! # let _ = ChaosEvent::Panic;
//! ```

use std::fmt;

/// Campaign-level chaos knobs: one seed, one injection rate.
///
/// The rate is parts-per-million (an integer, so configs echo into
/// reports without float-formatting hazards): `rate_ppm = 250_000`
/// injects an event into ~25% of engine runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChaosConfig {
    /// Seed mixed into every per-instance decision.
    pub seed: u64,
    /// Injection probability in parts per million, saturating at
    /// 1_000_000 (= every run gets an event).
    pub rate_ppm: u32,
}

/// What the chaos harness does to a run it selects.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChaosEvent {
    /// Panic at engine entry — exercises `catch_unwind` isolation and
    /// the retry path.
    Panic,
    /// Shrink the work budget so the run does real work but far more
    /// slowly than configured — exercises preemption accounting without
    /// making the outcome schedule-dependent.
    InflateWork,
    /// Zero the work budget so the run preempts immediately — exercises
    /// the `preempted` status plumbing end to end.
    SpuriousPreempt,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChaosEvent::Panic => "panic",
            ChaosEvent::InflateWork => "inflate-work",
            ChaosEvent::SpuriousPreempt => "spurious-preempt",
        })
    }
}

/// A [`ChaosConfig`] bound to one instance key: the per-run decision
/// point threaded through [`EngineConfig`](crate::EngineConfig).
///
/// `None`-like behavior is spelled [`ChaosPolicy::off`] so the config
/// struct stays `Copy` and defaultable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChaosPolicy {
    config: Option<ChaosConfig>,
    key: u64,
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy::off()
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosPolicy {
    /// No chaos: [`decide`](ChaosPolicy::decide) always returns `None`.
    pub fn off() -> ChaosPolicy {
        ChaosPolicy {
            config: None,
            key: 0,
        }
    }

    /// Binds a config to one instance key (see [`ChaosPolicy::key`]).
    pub fn new(config: ChaosConfig, key: u64) -> ChaosPolicy {
        ChaosPolicy {
            config: Some(config),
            key,
        }
    }

    /// Whether this policy can ever inject an event. `false` exactly for
    /// [`ChaosPolicy::off`]; callers that cache results keyed on the
    /// request (the session layer) use this to skip caching chaos runs,
    /// whose outcomes are deliberately schedule-perturbed.
    pub fn is_active(&self) -> bool {
        self.config.is_some()
    }

    /// Hashes the textual identity of an instance (circuit name, fault
    /// model, engine, seed, attempt number, ...) into a stable 64-bit
    /// key. FNV-1a over the parts with a separator byte between them, so
    /// `["ab", "c"]` and `["a", "bc"]` hash differently.
    pub fn key(parts: &[&str]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in parts {
            for &b in part.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            h = (h ^ 0x1f).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The chaos verdict for this run: `None` (leave it alone) or an
    /// event to inject. Pure function of `(config, key)`.
    pub fn decide(&self) -> Option<ChaosEvent> {
        let config = self.config?;
        let h = splitmix64(self.key ^ splitmix64(config.seed));
        if h % 1_000_000 >= u64::from(config.rate_ppm) {
            return None;
        }
        // The low bits chose *whether*; independent high bits choose
        // *what*, so the event mix stays uniform at low rates.
        Some(match (h >> 40) % 3 {
            0 => ChaosEvent::Panic,
            1 => ChaosEvent::InflateWork,
            _ => ChaosEvent::SpuriousPreempt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_never_fires() {
        for key in 0..64u64 {
            let p = ChaosPolicy { config: None, key };
            assert_eq!(p.decide(), None);
        }
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        for key in 0..256u64 {
            let zero = ChaosPolicy::new(
                ChaosConfig {
                    seed: 9,
                    rate_ppm: 0,
                },
                key,
            );
            assert_eq!(zero.decide(), None);
            let full = ChaosPolicy::new(
                ChaosConfig {
                    seed: 9,
                    rate_ppm: 1_000_000,
                },
                key,
            );
            assert!(full.decide().is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let config = ChaosConfig {
            seed: 1,
            rate_ppm: 500_000,
        };
        let mut differs = false;
        for key in 0..512u64 {
            let a = ChaosPolicy::new(config, key).decide();
            let b = ChaosPolicy::new(config, key).decide();
            assert_eq!(a, b, "key {key} not deterministic");
            let other = ChaosPolicy::new(ChaosConfig { seed: 2, ..config }, key).decide();
            differs |= a != other;
        }
        assert!(differs, "seed has no effect");
    }

    #[test]
    fn all_three_events_occur() {
        let config = ChaosConfig {
            seed: 3,
            rate_ppm: 1_000_000,
        };
        let mut seen = [false; 3];
        for key in 0..256u64 {
            match ChaosPolicy::new(config, key).decide() {
                Some(ChaosEvent::Panic) => seen[0] = true,
                Some(ChaosEvent::InflateWork) => seen[1] = true,
                Some(ChaosEvent::SpuriousPreempt) => seen[2] = true,
                None => unreachable!("full rate"),
            }
        }
        assert_eq!(seen, [true; 3], "event mix collapsed");
    }

    #[test]
    fn rate_scales_roughly_linearly() {
        let hits = |rate_ppm: u32| {
            (0..4096u64)
                .filter(|&key| {
                    ChaosPolicy::new(ChaosConfig { seed: 11, rate_ppm }, key)
                        .decide()
                        .is_some()
                })
                .count()
        };
        let quarter = hits(250_000);
        let half = hits(500_000);
        // Loose statistical sanity only: 4096 samples, expect ~1024/~2048.
        assert!((800..1250).contains(&quarter), "{quarter}");
        assert!((1800..2300).contains(&half), "{half}");
    }

    #[test]
    fn key_separator_prevents_concatenation_collisions() {
        assert_ne!(
            ChaosPolicy::key(&["ab", "c"]),
            ChaosPolicy::key(&["a", "bc"])
        );
        assert_ne!(ChaosPolicy::key(&[]), ChaosPolicy::key(&[""]));
    }
}
