//! Advanced simulation-based diagnosis: backtrack search with
//! resimulation-based effect analysis (in the spirit of the paper's
//! references [9, 18, 13]).
//!
//! Where BSIM stops at marked candidate sets and COV at covers, the
//! advanced simulation-based approaches *validate* candidate subsets by
//! re-simulation, backtracking over choices. This implementation searches
//! subsets of the path-tracing union, prunes with conservative X-injection
//! (a subset whose X-injection cannot even potentially rectify some test
//! is hopeless, and so is every subset of the remaining budget below it —
//! we prune only the exact-node check) and accepts a subset when the exact
//! forced-value oracle validates it.
//!
//! The result space sits strictly between COV and BSAT: all returned sets
//! are valid corrections (like BSAT, unlike COV), but only sets of *marked
//! gates* are considered, so corrections outside the traced paths (paper
//! Lemma 4 / Fig. 5(b)) are missed. The paper's Table 1 places the
//! advanced simulation-based approaches at complexity `O(|I|^{k+1} · m)`
//! for exactly this search.

use crate::bsim::{basic_sim_diagnose, BsimOptions};
use crate::test_set::TestSet;
use crate::validity::SimValidityEngine;
use gatediag_netlist::{Circuit, GateId};
use gatediag_sim::{parallel_map_init, x_may_rectify, Parallelism};

/// Options for [`sim_backtrack_diagnose`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SimBacktrackOptions {
    /// Path-tracing options for the marking phase. Its `budget` field is
    /// **ignored** (the marking phase runs unbudgeted): this function
    /// returns a bare solution list with no completeness channel, so a
    /// silently truncated marking pass would narrow the diagnosis with
    /// no way to tell — budgeted runs belong on the
    /// [`run_engine`](crate::run_engine) surface, which reports
    /// truncation.
    pub bsim: BsimOptions,
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Use X-injection pruning before the exact check (on by default;
    /// off quantifies its benefit in the ablation bench).
    pub x_pruning: bool,
    /// Worker count for fanning the top-level search branches out over a
    /// pool, one reusable [`SimValidityEngine`] per worker. The solution
    /// list is bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl Default for SimBacktrackOptions {
    fn default() -> Self {
        SimBacktrackOptions {
            bsim: BsimOptions::default(),
            max_solutions: 1_000_000,
            x_pruning: true,
            parallelism: Parallelism::default(),
        }
    }
}

/// Backtracking simulation-based diagnosis over the path-tracing union.
///
/// Returns all irredundant valid corrections of size ≤ `k` that consist
/// solely of gates marked by path tracing, ordered by candidate rank
/// (mark count), each sorted by gate id.
///
/// The search fans the top-level branches out over a worker pool
/// ([`SimBacktrackOptions::parallelism`]), one reusable
/// [`SimValidityEngine`] per worker. The subtrees are independent: every
/// subtree's candidate sets contain its own branch root, which no later
/// subtree can pick again, so the sequential search's superset pruning
/// never crosses subtree boundaries and the merged solution list is
/// bit-identical to the sequential one (solutions are merged in branch
/// order and truncated to `max_solutions` before post-processing).
pub fn sim_backtrack_diagnose(
    circuit: &Circuit,
    tests: &TestSet,
    k: usize,
    options: SimBacktrackOptions,
) -> Vec<Vec<GateId>> {
    // No truncation channel in the return type, so no budget: see the
    // `SimBacktrackOptions::bsim` docs.
    let bsim = basic_sim_diagnose(
        circuit,
        tests,
        BsimOptions {
            budget: crate::budget::Budget::default(),
            ..options.bsim
        },
    );
    // Candidates ordered by decreasing mark count M(g) — the greedy order
    // of the incremental approaches.
    let mut candidates: Vec<GateId> = bsim.union.iter().collect();
    candidates.sort_by_key(|g| std::cmp::Reverse(bsim.mark_counts[g.index()]));

    // Rough search-size estimate for the `Auto` work floor: the tree has
    // O(|candidates|^k) nodes, each screening against every test.
    let work = candidates
        .len()
        .saturating_pow(k.min(3) as u32)
        .saturating_mul(tests.len().max(1));
    let workers =
        options
            .parallelism
            .workers_for(candidates.len(), work, gatediag_sim::AUTO_WORK_FLOOR);
    let mut solutions: Vec<Vec<GateId>> = if k == 0 {
        Vec::new()
    } else if workers <= 1 {
        // Sequential: one engine, one shared solution list, and the
        // seed's *global* max_solutions early exit across branches.
        let mut engine = SimValidityEngine::new(circuit);
        let mut sols: Vec<Vec<GateId>> = Vec::new();
        let mut chosen: Vec<GateId> = Vec::new();
        for (i, &root) in candidates.iter().enumerate() {
            if sols.len() >= options.max_solutions {
                break;
            }
            chosen.push(root);
            search(
                circuit,
                tests,
                &candidates,
                i + 1,
                k - 1,
                &mut chosen,
                &mut sols,
                &options,
                &mut engine,
            );
            chosen.pop();
        }
        sols
    } else {
        // Parallel: the cap is per branch (a branch cannot know how many
        // solutions lower-indexed branches will contribute), so when
        // truncation actually triggers, up to max_solutions extra
        // solutions per branch are enumerated and discarded by the
        // prefix-truncating merge below. Output is still exactly the
        // sequential prefix.
        let per_branch: Vec<Vec<Vec<GateId>>> = parallel_map_init(
            workers,
            candidates.len(),
            || SimValidityEngine::new(circuit),
            |engine, i| {
                let mut branch_solutions = Vec::new();
                let mut chosen = vec![candidates[i]];
                search(
                    circuit,
                    tests,
                    &candidates,
                    i + 1,
                    k - 1,
                    &mut chosen,
                    &mut branch_solutions,
                    &options,
                    engine,
                );
                branch_solutions
            },
        );
        per_branch
            .into_iter()
            .flatten()
            .take(options.max_solutions)
            .collect()
    };
    for sol in &mut solutions {
        sol.sort();
    }
    solutions.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    solutions.dedup();
    // Drop non-irredundant sets (found via a different branch order).
    let filtered: Vec<Vec<GateId>> = solutions
        .iter()
        .filter(|sol| {
            !solutions
                .iter()
                .any(|other| other.len() < sol.len() && other.iter().all(|g| sol.contains(g)))
        })
        .cloned()
        .collect();
    filtered
}

/// One subtree of the backtrack search. `chosen` is non-empty; `solutions`
/// holds this subtree's finds only (cross-subtree pruning can never fire —
/// see [`sim_backtrack_diagnose`]).
#[allow(clippy::too_many_arguments)]
fn search(
    circuit: &Circuit,
    tests: &TestSet,
    candidates: &[GateId],
    from: usize,
    budget: usize,
    chosen: &mut Vec<GateId>,
    solutions: &mut Vec<Vec<GateId>>,
    options: &SimBacktrackOptions,
    engine: &mut SimValidityEngine<'_>,
) {
    if solutions.len() >= options.max_solutions {
        return;
    }
    // Skip supersets of known solutions (irredundancy).
    let redundant = solutions
        .iter()
        .any(|sol| sol.iter().all(|g| chosen.contains(g)));
    if redundant {
        return;
    }
    // Effect analysis: conservative X-check first, exact oracle after.
    let plausible = !options.x_pruning
        || tests
            .iter()
            .all(|t| x_may_rectify(circuit, &t.vector, chosen, t.output, t.expected));
    if plausible && engine.is_valid(tests, chosen) {
        solutions.push(chosen.clone());
        return; // children are supersets — redundant
    }
    if budget == 0 {
        return;
    }
    for i in from..candidates.len() {
        chosen.push(candidates[i]);
        search(
            circuit,
            tests,
            candidates,
            i + 1,
            budget - 1,
            chosen,
            solutions,
            options,
            engine,
        );
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsat::{basic_sat_diagnose, BsatOptions};
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};

    fn setup(seed: u64, p: usize, m: usize) -> (Circuit, Vec<GateId>, TestSet) {
        let golden = RandomCircuitSpec::new(6, 3, 35).seed(seed).generate();
        let (faulty, sites) = inject_errors(&golden, p, seed);
        let tests = generate_failing_tests(&golden, &faulty, m, seed, 8192);
        (faulty, sites.iter().map(|s| s.gate).collect(), tests)
    }

    #[test]
    fn all_results_are_valid_corrections() {
        for seed in 0..4 {
            let (faulty, _, tests) = setup(seed, 1, 6);
            if tests.is_empty() {
                continue;
            }
            let sols = sim_backtrack_diagnose(&faulty, &tests, 2, SimBacktrackOptions::default());
            for sol in &sols {
                assert!(
                    is_valid_correction(&faulty, &tests, sol),
                    "seed {seed}: invalid {sol:?}"
                );
            }
        }
    }

    #[test]
    fn results_are_subset_of_bsat_solutions() {
        // Every advanced-sim solution is a valid irredundant correction, so
        // BSAT (complete by Lemma 3) must contain it.
        for seed in 0..4 {
            let (faulty, _, tests) = setup(seed, 1, 6);
            if tests.is_empty() {
                continue;
            }
            let sim_sols =
                sim_backtrack_diagnose(&faulty, &tests, 2, SimBacktrackOptions::default());
            let bsat = basic_sat_diagnose(&faulty, &tests, 2, BsatOptions::default());
            for sol in &sim_sols {
                assert!(
                    bsat.solutions.contains(sol),
                    "seed {seed}: {sol:?} not in BSAT set {:?}",
                    bsat.solutions
                );
            }
        }
    }

    #[test]
    fn x_pruning_does_not_change_results() {
        for seed in 0..3 {
            let (faulty, _, tests) = setup(seed, 2, 6);
            if tests.is_empty() {
                continue;
            }
            let with = sim_backtrack_diagnose(&faulty, &tests, 2, SimBacktrackOptions::default());
            let without = sim_backtrack_diagnose(
                &faulty,
                &tests,
                2,
                SimBacktrackOptions {
                    x_pruning: false,
                    ..SimBacktrackOptions::default()
                },
            );
            assert_eq!(with, without, "seed {seed}");
        }
    }

    #[test]
    fn finds_single_injected_error() {
        for seed in 0..4 {
            let (faulty, errors, tests) = setup(seed, 1, 8);
            if tests.is_empty() {
                continue;
            }
            let sols = sim_backtrack_diagnose(
                &faulty,
                &tests,
                1,
                SimBacktrackOptions {
                    bsim: BsimOptions {
                        policy: crate::bsim::MarkPolicy::AllControlling,
                        ..BsimOptions::default()
                    },
                    ..SimBacktrackOptions::default()
                },
            );
            // Under AllControlling the real site is always marked, and the
            // singleton {error} is a valid correction.
            assert!(
                sols.contains(&vec![errors[0]]),
                "seed {seed}: {errors:?} missing from {sols:?}"
            );
        }
    }

    #[test]
    fn no_superset_solutions() {
        let (faulty, _, tests) = setup(5, 2, 6);
        if tests.is_empty() {
            return;
        }
        let sols = sim_backtrack_diagnose(&faulty, &tests, 3, SimBacktrackOptions::default());
        for a in &sols {
            for b in &sols {
                if a != b {
                    assert!(!a.iter().all(|g| b.contains(g)), "{b:?} ⊇ {a:?}");
                }
            }
        }
    }
}
