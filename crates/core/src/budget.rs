//! Cooperative budgets for the diagnosis engines.
//!
//! The paper's SAT engines are naturally bounded — a conflict budget turns
//! CDCL into an anytime procedure — but the simulation-side engines and
//! the validity screen had no preemption at all, so a campaign instance
//! could run away on a pathological circuit. This module is the shared
//! vocabulary that closes the gap: a [`Budget`] bundles the three limits a
//! caller can impose, and a [`BudgetMeter`] is the cheap checkpointed
//! counter the hot loops consult.
//!
//! # Determinism contract
//!
//! The three limits have very different determinism properties, and the
//! whole design hinges on keeping them apart:
//!
//! * **`work`** counts *engine-defined deterministic units* — tests traced
//!   by BSIM, branch-and-bound node expansions in COV, solver conflicts in
//!   the SAT engines, candidate sets screened by the validity screen. Work
//!   truncation points are a pure function of the input, so a
//!   work-truncated run is **bit-identical for every worker count**: the
//!   drift suites extend their contract over budgeted runs.
//! * **`conflicts`** is the classic SAT conflict budget (also
//!   deterministic — the CDCL search is schedule-independent in this
//!   workspace). It differs from `work` only in unit: it always means
//!   conflicts, even for engines whose work unit is something else.
//! * **`deadline_ms`** is a *wall-clock* deadline. It is inherently
//!   nondeterministic and therefore opt-in, quarantined exactly like the
//!   `wall_ms` report column: never set it in a flow whose output must be
//!   reproducible.
//!
//! Engines report exhaustion through `complete = false` plus a
//! [`Truncation`] reason on their result structs, which the campaign layer
//! surfaces as `InstanceStatus::Preempted`.
//!
//! # Examples
//!
//! ```
//! use gatediag_core::budget::{Budget, Truncation};
//!
//! let budget = Budget {
//!     work: Some(2),
//!     ..Budget::default()
//! };
//! let mut meter = budget.meter();
//! assert!(meter.charge(1));
//! assert!(meter.charge(1));
//! assert!(!meter.charge(1), "third unit exceeds the budget");
//! assert_eq!(meter.truncation(), Some(Truncation::Work));
//! ```

use std::time::{Duration, Instant};

/// How often a [`BudgetMeter`] actually polls the wall clock: one check
/// per this many [`BudgetMeter::charge`]/[`BudgetMeter::checkpoint`]
/// calls. Polling is the only non-free part of a checkpoint, so hot loops
/// can charge per node without measurable overhead.
const DEADLINE_POLL_MASK: u32 = 0xFF;

/// Why an engine stopped before exhausting its search space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Truncation {
    /// The deterministic work budget ran out ([`Budget::work`]).
    Work,
    /// The wall-clock deadline passed ([`Budget::deadline_ms`]).
    Deadline,
    /// The SAT conflict budget ran out ([`Budget::conflicts`]).
    Conflicts,
    /// The enumeration cap (`max_solutions`) was reached — not a budget,
    /// but reported through the same channel so callers see one reason.
    Solutions,
    /// The discriminating-test generation phase ran out of budget (work,
    /// conflicts or deadline) before resolving every candidate.
    TestGen,
}

impl Truncation {
    /// Stable serialisation token.
    pub fn name(self) -> &'static str {
        match self {
            Truncation::Work => "work",
            Truncation::Deadline => "deadline",
            Truncation::Conflicts => "conflicts",
            Truncation::Solutions => "solutions",
            Truncation::TestGen => "testgen",
        }
    }

    /// `true` for the budget-imposed reasons (everything except the
    /// enumeration cap) — the ones the campaign records as `preempted`.
    pub fn is_preemption(self) -> bool {
        !matches!(self, Truncation::Solutions)
    }

    /// Merges the truncation reasons of two phases of a composite run:
    /// a budget preemption from *either* phase outranks the enumeration
    /// cap (`Solutions`), so a tripped budget guard can never be masked
    /// into an `ok`-looking record; ties resolve to the earlier phase.
    pub fn merge(first: Option<Truncation>, second: Option<Truncation>) -> Option<Truncation> {
        [first, second]
            .iter()
            .flatten()
            .copied()
            .find(|t| t.is_preemption())
            .or(first)
            .or(second)
    }
}

/// A bundle of cooperative limits for one engine run.
///
/// All limits default to `None` (unlimited); [`Budget::default`] is the
/// zero-overhead no-op budget every option struct starts with. See the
/// [module docs](self) for the determinism contract of each field.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Budget {
    /// Deterministic work budget, in engine-defined units.
    pub work: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from [`Budget::anchor`]
    /// (or from meter creation when unanchored). Nondeterministic; opt-in.
    pub deadline_ms: Option<u64>,
    /// SAT conflict budget, threaded to every solver the run creates.
    pub conflicts: Option<u64>,
    /// Anchor instant for the deadline. Composite engines (`auto`, COV)
    /// set this once at entry so all phases race the *same* deadline
    /// instead of each phase re-starting the clock.
    pub anchor: Option<Instant>,
}

impl Budget {
    /// This budget anchored at `at` (used by composite engines so their
    /// phases share one deadline); a no-op if already anchored.
    pub fn anchored(mut self, at: Instant) -> Budget {
        self.anchor.get_or_insert(at);
        self
    }

    /// This budget with `extra` folded into the conflict limit (the
    /// smaller of the two wins). Lets `run_engine` merge the legacy
    /// `conflict_budget` knob with `Budget::conflicts`.
    pub fn merge_conflicts(mut self, extra: Option<u64>) -> Budget {
        self.conflicts = match (self.conflicts, extra) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// The element-wise intersection of this budget with `other`: the
    /// smaller of each pair of limits wins, the anchor is kept (falling
    /// back to `other`'s). Phases with their own sub-budget (the testgen
    /// phase) use this so they can never outlive the run budget.
    pub fn constrain(mut self, other: &Budget) -> Budget {
        fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            }
        }
        self.work = min_opt(self.work, other.work);
        self.deadline_ms = min_opt(self.deadline_ms, other.deadline_ms);
        self.conflicts = min_opt(self.conflicts, other.conflicts);
        self.anchor = self.anchor.or(other.anchor);
        self
    }

    /// The absolute deadline instant, if any (anchor + `deadline_ms`).
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline_ms
            .map(|ms| self.anchor.unwrap_or_else(Instant::now) + Duration::from_millis(ms))
    }

    /// The conflict limit a SAT engine should install, together with the
    /// [`Truncation`] reason to report when the solver gives up: the SAT
    /// engines' work unit *is* conflicts, so `work` and `conflicts` merge
    /// into one solver budget, with `Work` reported when the work limit is
    /// the binding one.
    pub fn conflict_limit(&self) -> (Option<u64>, Truncation) {
        match (self.work, self.conflicts) {
            (Some(w), Some(c)) if w <= c => (Some(w), Truncation::Work),
            (Some(w), None) => (Some(w), Truncation::Work),
            (_, c @ Some(_)) => (c, Truncation::Conflicts),
            (None, None) => (None, Truncation::Conflicts),
        }
    }

    /// Starts a [`BudgetMeter`] for this budget. The deadline is resolved
    /// to an absolute instant here, so forked meters and sibling phases
    /// race the same wall-clock point.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            work_limit: self.work.unwrap_or(u64::MAX),
            deadline: self.deadline_instant(),
            work_used: 0,
            tick: 0,
            truncation: None,
        }
    }
}

/// A cheap checkpointed counter over one [`Budget`].
///
/// `charge` is an add-and-compare on the deterministic work counter; the
/// wall clock is polled only every 256 calls (`DEADLINE_POLL_MASK`, and
/// only when a deadline is set at all), so metering a hot loop per node is
/// effectively free. Meters are plain values — a parallel flow gives each
/// worker its own [`BudgetMeter::fork`], which shares the limits and the
/// *absolute* deadline but counts its own work (the engines define their
/// work budgets per independent shard precisely so that forked accounting
/// stays deterministic).
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    work_limit: u64,
    deadline: Option<Instant>,
    work_used: u64,
    tick: u32,
    truncation: Option<Truncation>,
}

impl BudgetMeter {
    /// Charges `units` of deterministic work (plus an occasional deadline
    /// poll). Returns `false` once any limit is exhausted — the caller
    /// should stop at the next safe point.
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        if self.truncation.is_some() {
            return false;
        }
        gatediag_obs::count("budget.charged", units);
        self.work_used = self.work_used.saturating_add(units);
        if self.work_used > self.work_limit {
            self.truncation = Some(Truncation::Work);
            return false;
        }
        self.checkpoint()
    }

    /// A cooperative checkpoint: polls the deadline every few calls.
    /// Returns `false` once the meter is exhausted.
    #[inline]
    pub fn checkpoint(&mut self) -> bool {
        if self.truncation.is_some() {
            return false;
        }
        if let Some(deadline) = self.deadline {
            self.tick = self.tick.wrapping_add(1);
            if self.tick & DEADLINE_POLL_MASK == 0 && Instant::now() >= deadline {
                self.truncation = Some(Truncation::Deadline);
                return false;
            }
        }
        true
    }

    /// Work units still chargeable (`u64::MAX` when unlimited).
    pub fn remaining_work(&self) -> u64 {
        self.work_limit.saturating_sub(self.work_used)
    }

    /// Work units charged so far.
    pub fn work_used(&self) -> u64 {
        self.work_used
    }

    /// The absolute deadline this meter races, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Why the meter stopped, if it has.
    pub fn truncation(&self) -> Option<Truncation> {
        self.truncation
    }

    /// Records an externally observed truncation (e.g. a solver that gave
    /// up on its conflict budget); the first reason recorded wins.
    pub fn note(&mut self, reason: Truncation) {
        self.truncation.get_or_insert(reason);
    }

    /// A fresh meter with the same limits and the same absolute deadline
    /// but zero work — one per independent shard of a parallel flow.
    pub fn fork(&self) -> BudgetMeter {
        BudgetMeter {
            work_limit: self.work_limit,
            deadline: self.deadline,
            work_used: 0,
            tick: 0,
            truncation: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let mut meter = Budget::default().meter();
        for _ in 0..10_000 {
            assert!(meter.charge(1));
        }
        assert_eq!(meter.truncation(), None);
        assert_eq!(meter.remaining_work(), u64::MAX - 10_000);
    }

    #[test]
    fn work_budget_trips_exactly_at_the_limit() {
        let budget = Budget {
            work: Some(3),
            ..Budget::default()
        };
        let mut meter = budget.meter();
        assert!(meter.charge(3));
        assert!(!meter.charge(1));
        assert_eq!(meter.truncation(), Some(Truncation::Work));
        // Once stopped, stays stopped.
        assert!(!meter.charge(0));
        assert!(!meter.checkpoint());
    }

    #[test]
    fn checkpoint_polls_only_every_few_ticks() {
        // An already-expired deadline is detected by the checkpoint path
        // too, just not necessarily on the first call.
        let budget = Budget {
            deadline_ms: Some(0),
            ..Budget::default()
        }
        .anchored(Instant::now() - Duration::from_secs(1));
        let mut meter = budget.meter();
        let mut stopped = false;
        for _ in 0..=(DEADLINE_POLL_MASK + 1) {
            if !meter.checkpoint() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "expired deadline never detected");
        assert_eq!(meter.truncation(), Some(Truncation::Deadline));
    }

    #[test]
    fn forks_share_the_deadline_but_not_the_work() {
        let budget = Budget {
            work: Some(5),
            deadline_ms: Some(60_000),
            ..Budget::default()
        };
        let mut meter = budget.meter();
        meter.charge(4);
        let mut fork = meter.fork();
        assert_eq!(fork.remaining_work(), 5);
        assert_eq!(fork.deadline(), meter.deadline());
        assert!(fork.charge(5));
        assert!(!fork.charge(1));
    }

    #[test]
    fn conflict_limit_merges_work_and_conflicts() {
        let b = |work, conflicts| Budget {
            work,
            conflicts,
            ..Budget::default()
        };
        assert_eq!(
            b(None, None).conflict_limit(),
            (None, Truncation::Conflicts)
        );
        assert_eq!(
            b(Some(5), None).conflict_limit(),
            (Some(5), Truncation::Work)
        );
        assert_eq!(
            b(None, Some(7)).conflict_limit(),
            (Some(7), Truncation::Conflicts)
        );
        assert_eq!(
            b(Some(5), Some(7)).conflict_limit(),
            (Some(5), Truncation::Work)
        );
        assert_eq!(
            b(Some(9), Some(7)).conflict_limit(),
            (Some(7), Truncation::Conflicts)
        );
    }

    #[test]
    fn merge_conflicts_takes_the_smaller_limit() {
        let budget = Budget {
            work: Some(10),
            conflicts: Some(100),
            ..Budget::default()
        };
        assert_eq!(budget.merge_conflicts(Some(50)).conflicts, Some(50));
        assert_eq!(budget.merge_conflicts(Some(200)).conflicts, Some(100));
        assert_eq!(budget.merge_conflicts(None).conflicts, Some(100));
        assert_eq!(
            Budget::default().merge_conflicts(Some(3)).conflicts,
            Some(3)
        );
    }

    #[test]
    fn note_keeps_the_first_reason() {
        let mut meter = Budget::default().meter();
        meter.note(Truncation::Conflicts);
        meter.note(Truncation::Deadline);
        assert_eq!(meter.truncation(), Some(Truncation::Conflicts));
    }

    #[test]
    fn truncation_names_are_stable() {
        assert_eq!(Truncation::Work.name(), "work");
        assert_eq!(Truncation::Deadline.name(), "deadline");
        assert_eq!(Truncation::Conflicts.name(), "conflicts");
        assert_eq!(Truncation::Solutions.name(), "solutions");
        assert_eq!(Truncation::TestGen.name(), "testgen");
        assert!(Truncation::Work.is_preemption());
        assert!(Truncation::TestGen.is_preemption());
        assert!(!Truncation::Solutions.is_preemption());
    }

    #[test]
    fn constrain_takes_the_smaller_of_each_limit() {
        let a = Budget {
            work: Some(10),
            deadline_ms: None,
            conflicts: Some(100),
            anchor: None,
        };
        let b = Budget {
            work: Some(5),
            deadline_ms: Some(1_000),
            conflicts: Some(200),
            anchor: Some(Instant::now()),
        };
        let c = a.constrain(&b);
        assert_eq!(c.work, Some(5));
        assert_eq!(c.deadline_ms, Some(1_000));
        assert_eq!(c.conflicts, Some(100));
        assert_eq!(c.anchor, b.anchor);
        let d = Budget::default().constrain(&Budget::default());
        assert_eq!(d, Budget::default());
    }
}
