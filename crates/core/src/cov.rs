//! COV: diagnosis as set covering over path-tracing candidate sets
//! (paper Fig. 4, `SCDiagnose`).
//!
//! The candidate sets `C_1..C_m` produced by BSIM form a covering instance:
//! a solution picks at least one marked gate per test, is irredundant, and
//! has at most `k` gates. The paper solves the covering with Zchaff; we
//! provide the same SAT formulation (one selector variable per marked
//! gate, one at-least-one clause per test, totalizer bound, incremental
//! `k = 1..K` with subset blocking) plus an independent branch-and-bound
//! engine used for cross-checking.

use crate::bsim::{basic_sim_diagnose, BsimOptions, BsimResult};
use crate::budget::{Budget, BudgetMeter, Truncation};
use crate::test_set::TestSet;
use gatediag_cnf::{ClauseSink, Totalizer};
use gatediag_netlist::{Circuit, GateId};
use gatediag_sat::{enumerate_positive_subsets, Solver, Var};
use gatediag_sim::{parallel_map_init, Parallelism};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Engine used to enumerate covers.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum CovEngine {
    /// SAT formulation solved with the CDCL engine (the paper's choice).
    #[default]
    Sat,
    /// Explicit branch-and-bound enumeration (cross-check / no-SAT mode).
    BranchAndBound,
}

/// Options for [`sc_diagnose`] / [`cover_all`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CovOptions {
    /// Enumeration engine.
    pub engine: CovEngine,
    /// Stop after this many solutions (`complete = false` if hit).
    pub max_solutions: usize,
    /// Path-tracing options for the BSIM phase (its `parallelism` field
    /// shards the packed sweeps).
    pub bsim: BsimOptions,
    /// Worker count for the covering phase. Both engines fan out over the
    /// gates of the top-level branch set: [`CovEngine::BranchAndBound`]
    /// shards its recursion subtrees, and [`CovEngine::Sat`] partitions
    /// the solution space by "first branch-set gate contained" — branch
    /// `b` enumerates with `s_b` asserted and `s_0..s_{b-1}` denied on a
    /// per-branch solver, so the branches are disjoint and independently
    /// enumerable. Solutions are bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Cooperative budget. COV's deterministic work unit depends on the
    /// engine: **branch-and-bound node expansions** for
    /// [`CovEngine::BranchAndBound`], **solver conflicts** for
    /// [`CovEngine::Sat`]. Because the top-level branches are independent
    /// shards, the work budget applies *per top-level branch* — a pure
    /// function of the instance, so budgeted runs stay bit-identical for
    /// every worker count. In [`sc_diagnose`] the same work number first
    /// bounds the BSIM phase in *its* unit (one test traced = one unit; a
    /// preempted BSIM phase short-circuits the run) — phase units are not
    /// commensurable and are never summed. The wall deadline is shared
    /// across phases and branches (opt-in, nondeterministic).
    pub budget: Budget,
}

impl Default for CovOptions {
    fn default() -> Self {
        CovOptions {
            engine: CovEngine::default(),
            max_solutions: 1_000_000,
            bsim: BsimOptions::default(),
            parallelism: Parallelism::default(),
            budget: Budget::default(),
        }
    }
}

/// Result of a covering run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CovResult {
    /// All irredundant covers of size ≤ k, each sorted by gate id; the
    /// list is sorted by (size, lexicographic) for determinism.
    pub solutions: Vec<Vec<GateId>>,
    /// `false` if `max_solutions` truncated the enumeration.
    pub complete: bool,
    /// Time spent building the instance (for COV this includes BSIM, as in
    /// Table 2's "CNF" column).
    pub build_time: Duration,
    /// Time until the first solution (Table 2 "One").
    pub first_solution_time: Duration,
    /// Total time including enumeration (Table 2 "All").
    pub total_time: Duration,
    /// Why the run stopped early, if it did: a budget reason, or
    /// [`Truncation::Solutions`] for the `max_solutions` cap. Always
    /// `Some` when `complete` is `false`.
    pub truncation: Option<Truncation>,
    /// Deterministic work charged (tests traced by the BSIM phase plus
    /// the covering engine's units — see [`CovOptions::budget`]).
    pub work: u64,
    /// The BSIM result the covering instance was built from (absent for
    /// [`cover_all`] on raw sets).
    pub bsim: Option<BsimResult>,
}

/// `SCDiagnose(I, T, k)` — Fig. 4: BSIM first, then all irredundant covers
/// of the candidate sets up to size `k`.
///
/// # Examples
///
/// ```
/// use gatediag_core::{sc_diagnose, generate_failing_tests, CovOptions};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, _) = inject_errors(&golden, 1, 3);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
/// let result = sc_diagnose(&faulty, &tests, 1, CovOptions::default());
/// // Every solution hits every candidate set.
/// let bsim = result.bsim.as_ref().unwrap();
/// for sol in &result.solutions {
///     for set in &bsim.candidate_sets {
///         assert!(sol.iter().any(|&g| set.contains(g)));
///     }
/// }
/// ```
pub fn sc_diagnose(circuit: &Circuit, tests: &TestSet, k: usize, options: CovOptions) -> CovResult {
    let build_start = Instant::now();
    // Anchor the budget once so the BSIM phase and the covering phase race
    // the same wall deadline. The work number bounds *each phase in its
    // own unit* (tests traced, then covering nodes/conflicts) — the units
    // are not commensurable, so they are never summed across phases; a
    // preempted BSIM phase short-circuits the run instead.
    let budget = options.budget.anchored(build_start);
    let mut bsim_options = options.bsim;
    bsim_options.budget = budget;
    let bsim = basic_sim_diagnose(circuit, tests, bsim_options);
    if let Some(reason) = bsim.truncation {
        // The budget ran out while (or before) collecting candidate sets:
        // covering a partial instance would report covers of the traced
        // prefix as if they were covers of the full test set, so stop
        // here and report the preemption.
        let elapsed = build_start.elapsed();
        return CovResult {
            solutions: Vec::new(),
            complete: false,
            build_time: elapsed,
            first_solution_time: Duration::ZERO,
            total_time: elapsed,
            truncation: Some(reason),
            work: bsim.work,
            bsim: Some(bsim),
        };
    }
    let sets: Vec<Vec<GateId>> = bsim
        .candidate_sets
        .iter()
        .map(|s| s.iter().collect())
        .collect();
    let mut cover_options = options;
    cover_options.budget = budget;
    let mut result = cover_all(&sets, k, cover_options);
    result.build_time += build_start.elapsed() - result.total_time;
    result.work += bsim.work;
    result.bsim = Some(bsim);
    result
}

/// Enumerates all irredundant covers of the given sets up to size `k`
/// (the covering phase of Fig. 4, usable on raw abstract sets — see the
/// paper's Example 1).
///
/// An empty collection of sets has the empty cover as its only solution.
/// If any set is empty, there is no cover at all.
pub fn cover_all(sets: &[Vec<GateId>], k: usize, options: CovOptions) -> CovResult {
    let total_start = Instant::now();
    let budget = options.budget.anchored(total_start);
    let out = match options.engine {
        CovEngine::Sat => cover_sat(sets, k, options.max_solutions, options.parallelism, &budget),
        CovEngine::BranchAndBound => {
            cover_bnb(sets, k, options.max_solutions, options.parallelism, &budget)
        }
    };
    let mut solutions = out.solutions;
    for sol in &mut solutions {
        sol.sort();
    }
    solutions.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    CovResult {
        solutions,
        complete: out.truncation.is_none(),
        build_time: out.build_time,
        first_solution_time: out.first_solution_time,
        total_time: total_start.elapsed(),
        truncation: out.truncation,
        work: out.work,
        bsim: None,
    }
}

/// What a covering engine hands back to [`cover_all`].
struct CoverOutcome {
    solutions: Vec<Vec<GateId>>,
    build_time: Duration,
    first_solution_time: Duration,
    /// `None` = complete; [`Truncation::Solutions`] for the cap, a budget
    /// reason otherwise.
    truncation: Option<Truncation>,
    /// Engine-defined work units spent (nodes / conflicts).
    work: u64,
}

/// SAT cover enumeration, partitioned over the top-level branch set.
///
/// Like [`cover_bnb`], the root branches on the smallest set: every cover
/// must contain one of its gates, so "first branch-set gate contained"
/// partitions the solution space into disjoint branches. Branch `b` gets
/// its *own* CDCL solver with `s_{g_b}` asserted and `s_{g_j}` (`j < b`)
/// denied as root units, then runs the usual incremental `k`-loop with
/// subset blocking. Branches are independent, so they shard across the
/// worker pool; the branch-ordered merge is deterministic for every
/// worker count (each branch's enumeration depends only on its own
/// solver).
///
/// Within a branch, subset blocking alone cannot reject a cover whose
/// redundant gate *is* the branch gate (the witness subset lives in an
/// earlier branch), so the merged list is filtered for irredundancy
/// explicitly — the same final filter the branch-and-bound engine
/// applies. For complete runs the result is exactly the irredundant
/// covers of size ≤ `k` (paper Lemma 3), identical to the pre-sharding
/// single-solver enumeration; truncated runs keep the same cap and
/// `complete = false` semantics but may retain a different (still
/// deterministic) subset of the solutions.
fn cover_sat(
    sets: &[Vec<GateId>],
    k: usize,
    max_solutions: usize,
    parallelism: Parallelism,
    budget: &Budget,
) -> CoverOutcome {
    let build_start = Instant::now();
    if sets.is_empty() {
        return trivial_outcome(vec![Vec::new()], build_start.elapsed());
    }
    if sets.iter().any(|s| s.is_empty()) {
        return trivial_outcome(Vec::new(), build_start.elapsed());
    }
    let branch_set = sets
        .iter()
        .min_by_key(|set| set.len())
        .expect("sets checked non-empty");
    let cap = max_solutions.max(1);
    let build_time = build_start.elapsed();
    let enum_start = Instant::now();
    // The SAT engine's work unit is solver conflicts: the work budget and
    // the conflict budget merge into one solver limit, installed on each
    // branch's own solver (bounding every enumeration query; branches are
    // independent shards, so the truncation points stay deterministic for
    // every worker count), and the wall deadline plugs into the solver's
    // cooperative deadline hook.
    let (conflict_limit, conflict_reason) = budget.conflict_limit();
    let deadline = budget.deadline_instant();
    // Enumeration cost is dominated by per-branch CDCL runs over the
    // covering CNF; scale the Auto work estimate with instance size.
    let universe: usize = sets.iter().map(|s| s.len()).sum();
    let work_estimate = branch_set
        .len()
        .saturating_mul(universe.max(1))
        .saturating_mul(64);
    let workers = parallelism.workers_for(
        branch_set.len(),
        work_estimate,
        gatediag_sim::AUTO_WORK_FLOOR,
    );
    let per_branch: Vec<BranchOutcome> = parallel_map_init(
        workers,
        branch_set.len(),
        || (),
        |(), b| {
            enumerate_cover_branch(
                sets,
                branch_set,
                b,
                k,
                cap,
                enum_start,
                conflict_limit,
                conflict_reason,
                deadline,
            )
        },
    );

    let mut found: Vec<Vec<GateId>> = Vec::new();
    let mut complete = true;
    let mut first_elapsed: Option<Duration> = None;
    let mut budget_truncation: Option<Truncation> = None;
    let mut work = 0u64;
    for branch in per_branch {
        if let Some(t) = branch.first_elapsed {
            first_elapsed = Some(first_elapsed.map_or(t, |cur: Duration| cur.min(t)));
        }
        complete &= branch.complete;
        if budget_truncation.is_none() {
            budget_truncation = branch.truncation;
        }
        work += branch.work;
        found.extend(branch.solutions);
    }
    let truncated = found.len() >= cap;
    found.truncate(cap);
    let first_solution_time = first_elapsed.map_or(Duration::ZERO, |t| build_time + t);

    // Cross-branch irredundancy filter (see the function docs) plus the
    // usual normalisation.
    for sol in &mut found {
        sol.sort();
    }
    found.sort();
    found.dedup();
    let irredundant: Vec<Vec<GateId>> = found
        .into_iter()
        .filter(|sol| {
            sol.iter().all(|g| {
                let without: Vec<GateId> = sol.iter().copied().filter(|&h| h != *g).collect();
                sets.iter()
                    .any(|set| !without.iter().any(|h| set.contains(h)))
            })
        })
        .collect();
    CoverOutcome {
        solutions: irredundant,
        build_time,
        first_solution_time,
        truncation: budget_truncation.or((!complete || truncated).then_some(Truncation::Solutions)),
        work,
    }
}

/// A trivial (empty-instance) outcome: complete, no work.
fn trivial_outcome(solutions: Vec<Vec<GateId>>, build_time: Duration) -> CoverOutcome {
    CoverOutcome {
        solutions,
        build_time,
        first_solution_time: build_time,
        truncation: None,
        work: 0,
    }
}

/// What one top-level branch of either covering engine reports back.
struct BranchOutcome {
    solutions: Vec<Vec<GateId>>,
    complete: bool,
    first_elapsed: Option<Duration>,
    truncation: Option<Truncation>,
    work: u64,
}

/// One branch of the sharded SAT cover enumeration: covers containing
/// `branch_set[b]` and none of `branch_set[..b]`. `conflict_limit` /
/// `deadline` are the per-branch cooperative budget (see
/// [`CovOptions::budget`]); `conflict_reason` is the [`Truncation`] to
/// report when the conflict limit trips.
#[allow(clippy::too_many_arguments)] // one shard's full budget context
fn enumerate_cover_branch(
    sets: &[Vec<GateId>],
    branch_set: &[GateId],
    b: usize,
    k: usize,
    cap: usize,
    enum_start: Instant,
    conflict_limit: Option<u64>,
    conflict_reason: Truncation,
    deadline: Option<Instant>,
) -> BranchOutcome {
    let mut solver = Solver::new();
    let mut var_of: HashMap<GateId, Var> = HashMap::new();
    let mut gate_of: Vec<GateId> = Vec::new();
    let mut selectors: Vec<Var> = Vec::new();
    for set in sets {
        for &g in set {
            var_of.entry(g).or_insert_with(|| {
                let v = ClauseSink::new_var(&mut solver);
                gate_of.push(g);
                selectors.push(v);
                v
            });
        }
    }
    for set in sets {
        let clause: Vec<_> = set.iter().map(|g| var_of[g].positive()).collect();
        solver.add_clause(&clause);
    }
    // The branch constraints (root units). A duplicated branch gate makes
    // a later branch inconsistent, which is exactly right: the first
    // occurrence's branch already owns those covers.
    solver.add_clause(&[var_of[&branch_set[b]].positive()]);
    for g in &branch_set[..b] {
        solver.add_clause(&[var_of[g].negative()]);
    }
    let limit = k.min(selectors.len());
    let select_lits: Vec<_> = selectors.iter().map(|v| v.positive()).collect();
    let totalizer = Totalizer::new(&mut solver, &select_lits, limit);
    solver.set_conflict_budget(conflict_limit);
    solver.set_deadline(deadline);

    let mut solutions: Vec<Vec<GateId>> = Vec::new();
    let mut complete = true;
    let mut first_elapsed: Option<Duration> = None;
    let mut truncation: Option<Truncation> = None;
    'sizes: for size in 1..=limit {
        let assumptions: Vec<_> = totalizer.at_most(size).into_iter().collect();
        let remaining = cap.saturating_sub(solutions.len());
        if remaining == 0 {
            complete = false;
            break 'sizes;
        }
        let out = enumerate_positive_subsets(&mut solver, &selectors, &assumptions, remaining);
        for subset in out.solutions {
            if solutions.is_empty() {
                first_elapsed = Some(enum_start.elapsed());
            }
            let gates: Vec<GateId> = subset
                .iter()
                .map(|v| {
                    let pos = selectors
                        .iter()
                        .position(|s| s == v)
                        .expect("selector var maps to a gate");
                    gate_of[pos]
                })
                .collect();
            solutions.push(gates);
        }
        if !out.complete {
            complete = false;
            if out.gave_up {
                truncation = Some(if solver.deadline_hit() {
                    Truncation::Deadline
                } else {
                    conflict_reason
                });
            }
            break 'sizes;
        }
    }
    BranchOutcome {
        solutions,
        complete,
        first_elapsed,
        truncation,
        work: solver.stats().conflicts,
    }
}

/// Branch-and-bound cover enumeration, fanned out over the gates of the
/// top-level branch set.
///
/// The subtrees share nothing (the recursion's only cross-branch state in
/// the sequential version was the truncation counter), so with one worker
/// the branches share the seed's global cap and early exit, and with
/// several each branch enumerates independently with its own cap: the
/// branch-ordered merge, truncated to the cap, reproduces the sequential
/// DFS solution list exactly for every worker count (at the cost of up to
/// one cap's worth of discarded work per branch when truncation
/// actually triggers).
///
/// The effective cap is `max_solutions.max(1)`: the seed recursion only
/// noticed truncation *after* pushing a solution, so even
/// `max_solutions == 0` reports the first cover found.
///
/// # Budgeted runs
///
/// With a work or deadline budget the engine always takes the
/// branch-decomposed path — even with one worker — so that a truncated
/// enumeration is the same *set of per-branch truncations* for every
/// worker count: each top-level branch gets its own meter (the full work
/// budget, counted in node expansions; the shared absolute deadline), and
/// branches merge in branch order. Unbudgeted runs keep the seed's
/// sequential shape bit-for-bit.
fn cover_bnb(
    sets: &[Vec<GateId>],
    k: usize,
    max_solutions: usize,
    parallelism: Parallelism,
    budget: &Budget,
) -> CoverOutcome {
    let build_start = Instant::now();
    if sets.is_empty() {
        return trivial_outcome(vec![Vec::new()], build_start.elapsed());
    }
    if sets.iter().any(|s| s.is_empty()) {
        return trivial_outcome(Vec::new(), build_start.elapsed());
    }
    let build_time = build_start.elapsed();
    let enum_start = Instant::now();
    // The root branches on the smallest set (nothing is covered yet);
    // ties resolve to the first set, as in the recursion.
    let branch_set = sets
        .iter()
        .min_by_key(|set| set.len())
        .expect("sets checked non-empty");
    let cap = max_solutions.max(1);
    let budgeted = budget.work.is_some() || budget.deadline_ms.is_some();
    let mut found: Vec<Vec<GateId>> = Vec::new();
    let mut first_elapsed: Option<Duration> = None;
    let mut budget_truncation: Option<Truncation> = None;
    let mut work = 0u64;
    {
        // Rough enumeration-size estimate for the `Auto` work floor: the
        // search visits O(branch · max_set_len^(k-1)) nodes, each
        // scanning the sets for cover checks.
        let max_set_len = sets.iter().map(|s| s.len()).max().unwrap_or(1);
        let work_estimate = branch_set
            .len()
            .saturating_mul(max_set_len.saturating_pow(k.saturating_sub(1).min(3) as u32))
            .saturating_mul(sets.len());
        let workers = parallelism.workers_for(
            branch_set.len(),
            work_estimate,
            gatediag_sim::AUTO_WORK_FLOOR,
        );
        if !budgeted && workers <= 1 {
            // Sequential: one recursion from the empty root — shared
            // solution list, global early exit across branches (the
            // seed's behaviour). With empty `chosen` the recursion picks
            // the same smallest branch set as above, and its budget
            // check handles `k == 0`. The meter is unlimited here, so the
            // hot loop pays one add per node and never polls the clock.
            let mut meter = Budget::default().meter();
            recurse(
                sets,
                k,
                &mut Vec::new(),
                &mut found,
                cap,
                &mut first_elapsed,
                enum_start,
                &mut meter,
            );
            work = meter.work_used();
        } else if k > 0 {
            // Branch-decomposed: always taken when budgeted (any worker
            // count) so truncation points cannot depend on the schedule.
            let root_meter = budget.meter();
            let per_branch: Vec<BranchOutcome> = parallel_map_init(
                workers,
                branch_set.len(),
                || (),
                |(), b| {
                    let mut chosen = vec![branch_set[b]];
                    let mut local: Vec<Vec<GateId>> = Vec::new();
                    let mut local_first = None;
                    let mut meter = root_meter.fork();
                    recurse(
                        sets,
                        k - 1,
                        &mut chosen,
                        &mut local,
                        cap,
                        &mut local_first,
                        enum_start,
                        &mut meter,
                    );
                    BranchOutcome {
                        solutions: local,
                        complete: meter.truncation().is_none(),
                        first_elapsed: local_first,
                        truncation: meter.truncation(),
                        work: meter.work_used(),
                    }
                },
            );
            for branch in per_branch {
                if let Some(t) = branch.first_elapsed {
                    first_elapsed = Some(first_elapsed.map_or(t, |cur: Duration| cur.min(t)));
                }
                if budget_truncation.is_none() {
                    budget_truncation = branch.truncation;
                }
                work += branch.work;
                found.extend(branch.solutions);
            }
        }
    }
    let truncated = found.len() >= cap;
    found.truncate(cap);
    let first_solution_time = first_elapsed.map_or(Duration::ZERO, |t| build_time + t);

    // Deduplicate and keep only irredundant covers.
    for sol in &mut found {
        sol.sort();
    }
    found.sort();
    found.dedup();
    let irredundant: Vec<Vec<GateId>> = found
        .iter()
        .filter(|sol| {
            sol.iter().all(|g| {
                // Removing g must leave some set uncovered.
                let without: Vec<GateId> = sol.iter().copied().filter(|&h| h != *g).collect();
                sets.iter()
                    .any(|set| !without.iter().any(|h| set.contains(h)))
            })
        })
        .cloned()
        .collect();
    CoverOutcome {
        solutions: irredundant,
        build_time,
        first_solution_time,
        truncation: budget_truncation.or(truncated.then_some(Truncation::Solutions)),
        work,
    }
}

/// The cover search. The sequential path enters once with an empty
/// `chosen` (the full seed recursion); a parallel branch enters with its
/// root gate pre-chosen. `found` is the sequential path's shared list or
/// a parallel branch's local list, capped at `cap`
/// (`max_solutions.max(1)`, see [`cover_bnb`]). `meter` charges one work
/// unit per node expansion — the engine's cooperative checkpoint; an
/// unlimited meter reduces it to a counter.
#[allow(clippy::too_many_arguments)] // one search frame's full context
fn recurse(
    sets: &[Vec<GateId>],
    budget: usize,
    chosen: &mut Vec<GateId>,
    found: &mut Vec<Vec<GateId>>,
    cap: usize,
    first_elapsed: &mut Option<Duration>,
    enum_start: Instant,
    meter: &mut BudgetMeter,
) {
    if found.len() >= cap || !meter.charge(1) {
        return;
    }
    // Find the smallest uncovered set to branch on.
    let uncovered = sets
        .iter()
        .filter(|set| !set.iter().any(|g| chosen.contains(g)))
        .min_by_key(|set| set.len());
    let Some(branch_set) = uncovered else {
        if found.is_empty() {
            *first_elapsed = Some(enum_start.elapsed());
        }
        found.push(chosen.clone());
        return;
    };
    if budget == 0 {
        return;
    }
    for &g in branch_set {
        chosen.push(g);
        recurse(
            sets,
            budget - 1,
            chosen,
            found,
            cap,
            first_elapsed,
            enum_start,
            meter,
        );
        chosen.pop();
        if found.len() >= cap || meter.truncation().is_some() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};

    fn g(i: usize) -> GateId {
        GateId::new(i)
    }

    fn both_engines(sets: &[Vec<GateId>], k: usize) -> (Vec<Vec<GateId>>, Vec<Vec<GateId>>) {
        let sat = cover_all(
            sets,
            k,
            CovOptions {
                engine: CovEngine::Sat,
                ..CovOptions::default()
            },
        );
        let bnb = cover_all(
            sets,
            k,
            CovOptions {
                engine: CovEngine::BranchAndBound,
                ..CovOptions::default()
            },
        );
        assert!(sat.complete && bnb.complete);
        (sat.solutions, bnb.solutions)
    }

    /// The paper's Example 1: C1={A,B,F,G}, C2={C,D,E,F,G}, C3={B,C,E,H}.
    fn example1_sets() -> Vec<Vec<GateId>> {
        // A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7
        vec![
            vec![g(0), g(1), g(5), g(6)],
            vec![g(2), g(3), g(4), g(5), g(6)],
            vec![g(1), g(2), g(4), g(7)],
        ]
    }

    #[test]
    fn example1_finds_bd_with_k2() {
        let (sat, bnb) = both_engines(&example1_sets(), 2);
        assert_eq!(sat, bnb);
        // {B, D} is one possible solution (paper Example 1).
        assert!(sat.contains(&vec![g(1), g(3)]), "missing {{B,D}}: {sat:?}");
        // Every solution hits all three sets and is within the bound.
        for sol in &sat {
            assert!(sol.len() <= 2);
            for set in example1_sets() {
                assert!(
                    sol.iter().any(|x| set.contains(x)),
                    "{sol:?} misses {set:?}"
                );
            }
        }
    }

    #[test]
    fn example1_finds_adh_with_k3() {
        let (sat, bnb) = both_engines(&example1_sets(), 3);
        assert_eq!(sat, bnb);
        // {A, D, H} is the paper's "another solution" (requires k = 3).
        assert!(
            sat.contains(&vec![g(0), g(3), g(7)]),
            "missing {{A,D,H}}: {sat:?}"
        );
        // But it must NOT appear at k = 2.
        let (sat2, _) = both_engines(&example1_sets(), 2);
        assert!(!sat2.contains(&vec![g(0), g(3), g(7)]));
    }

    #[test]
    fn solutions_are_irredundant() {
        let sets = example1_sets();
        let (sat, _) = both_engines(&sets, 3);
        for sol in &sat {
            for drop in sol {
                let without: Vec<GateId> = sol.iter().copied().filter(|x| x != drop).collect();
                let still_covers = sets
                    .iter()
                    .all(|set| without.iter().any(|x| set.contains(x)));
                assert!(!still_covers, "{sol:?} minus {drop} still covers");
            }
        }
    }

    #[test]
    fn engines_agree_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for round in 0..25 {
            let universe = rng.gen_range(3..9usize);
            let num_sets = rng.gen_range(1..5usize);
            let sets: Vec<Vec<GateId>> = (0..num_sets)
                .map(|_| {
                    let size = rng.gen_range(1..=universe);
                    let mut items: Vec<usize> = (0..universe).collect();
                    for i in (1..items.len()).rev() {
                        items.swap(i, rng.gen_range(0..=i));
                    }
                    items.truncate(size);
                    items.into_iter().map(g).collect()
                })
                .collect();
            let k = rng.gen_range(1..4usize);
            let (sat, bnb) = both_engines(&sets, k);
            assert_eq!(sat, bnb, "round {round}: sets {sets:?} k {k}");
        }
    }

    #[test]
    fn empty_sets_edge_cases() {
        let empty: Vec<Vec<GateId>> = Vec::new();
        let (sat, bnb) = both_engines(&empty, 2);
        assert_eq!(sat, vec![Vec::<GateId>::new()]);
        assert_eq!(bnb, sat);
        let unhittable = vec![vec![g(0)], vec![]];
        let (sat, bnb) = both_engines(&unhittable, 2);
        assert!(sat.is_empty());
        assert!(bnb.is_empty());
    }

    #[test]
    fn max_solutions_truncates() {
        let sets = example1_sets();
        let out = cover_all(
            &sets,
            3,
            CovOptions {
                max_solutions: 2,
                ..CovOptions::default()
            },
        );
        assert!(!out.complete);
        assert!(out.solutions.len() <= 2);
    }

    #[test]
    fn sc_diagnose_end_to_end() {
        let golden = RandomCircuitSpec::new(6, 3, 50).seed(5).generate();
        let (faulty, _) = inject_errors(&golden, 2, 5);
        let tests = generate_failing_tests(&golden, &faulty, 8, 5, 4096);
        if tests.is_empty() {
            return;
        }
        let result = sc_diagnose(&faulty, &tests, 2, CovOptions::default());
        assert!(result.complete);
        let bsim = result.bsim.as_ref().unwrap();
        for sol in &result.solutions {
            assert!(sol.len() <= 2);
            for set in &bsim.candidate_sets {
                assert!(sol.iter().any(|&x| set.contains(x)));
            }
        }
        // Timing fields are coherent.
        assert!(result.first_solution_time <= result.total_time + result.build_time);
    }
}
