//! From diagnosis to *correction*: extracting replacement functions.
//!
//! Sec. 4 of the paper observes that SAT-based diagnosis supplies, per
//! test, a new value for each gate of the correction, and that "this can
//! be exploited to determine the 'correct' function of the gate". Two
//! levels of that idea:
//!
//! * [`correction_observations`] — the raw material: for every test, a
//!   satisfying model of the freed instance gives each corrected gate's
//!   fan-in values and its required output value;
//! * [`find_kind_repairs`] — library resynthesis: search the same-arity
//!   gate library for kind reassignments at the correction sites that
//!   rectify *every* test (verified by simulation).

use crate::test_set::TestSet;
use gatediag_cnf::{encode_gate, ClauseSink};
use gatediag_netlist::{Circuit, GateId, GateKind};
use gatediag_sat::{Lit, SolveResult, Solver, Var};
use gatediag_sim::{pack_vectors_into, parallel_map_init, PackedSim, Parallelism};

/// One per-test observation of a corrected gate's environment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionObservation {
    /// Index of the test this observation belongs to.
    pub test_index: usize,
    /// The gate's fan-in values in the satisfying model.
    pub fanin_values: Vec<bool>,
    /// The output value the model injected at the gate.
    pub injected: bool,
}

/// Per-test injected values for each gate of a valid correction.
///
/// Returns `None` when `correction` is not a valid correction (some test
/// has no satisfying model). The observations come from *one* satisfying
/// model per test; other models may exist.
pub fn correction_observations(
    circuit: &Circuit,
    tests: &TestSet,
    correction: &[GateId],
) -> Option<Vec<(GateId, Vec<FunctionObservation>)>> {
    let mut freed = vec![false; circuit.len()];
    for &g in correction {
        freed[g.index()] = true;
    }
    let mut per_gate: Vec<(GateId, Vec<FunctionObservation>)> =
        correction.iter().map(|&g| (g, Vec::new())).collect();
    for (test_index, test) in tests.iter().enumerate() {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..circuit.len())
            .map(|_| ClauseSink::new_var(&mut solver))
            .collect();
        for &id in circuit.topo_order() {
            let gate = circuit.gate(id);
            if gate.kind() == GateKind::Input || freed[id.index()] {
                continue;
            }
            let fanins: Vec<Lit> = gate
                .fanins()
                .iter()
                .map(|f| vars[f.index()].positive())
                .collect();
            encode_gate(&mut solver, gate.kind(), vars[id.index()], &fanins, None);
        }
        for (&pi, &v) in circuit.inputs().iter().zip(&test.vector) {
            solver.add_clause(&[vars[pi.index()].lit(v)]);
        }
        solver.add_clause(&[vars[test.output.index()].lit(test.expected)]);
        if solver.solve(&[]) != SolveResult::Sat {
            return None;
        }
        for (gate, observations) in &mut per_gate {
            let fanin_values: Vec<bool> = circuit
                .gate(*gate)
                .fanins()
                .iter()
                .map(|f| {
                    solver
                        .model_value(vars[f.index()].positive())
                        .expect("model available")
                })
                .collect();
            let injected = solver
                .model_value(vars[gate.index()].positive())
                .expect("model available");
            observations.push(FunctionObservation {
                test_index,
                fanin_values,
                injected,
            });
        }
    }
    Some(per_gate)
}

/// A concrete repair: a gate-kind reassignment per correction site.
pub type KindRepair = Vec<(GateId, GateKind)>;

/// Searches the same-arity gate library for kind reassignments at
/// `correction` that rectify every test.
///
/// Every test vector is packed into one multi-word bit-parallel batch and
/// simulated once; each candidate repair is then screened by *kind
/// overrides* on a reusable [`PackedSim`] — only the fan-out cones of the
/// correction sites are re-simulated per assignment, instead of cloning
/// and fully resimulating the circuit. The search is exhaustive over the
/// library, so for an injected gate-change error the original function is
/// guaranteed to be among the repairs when `correction` covers the error
/// sites.
///
/// # Panics
///
/// Panics if `correction.len() > 4` (library search is `6^n`).
pub fn find_kind_repairs(
    circuit: &Circuit,
    tests: &TestSet,
    correction: &[GateId],
) -> Vec<KindRepair> {
    find_kind_repairs_par(circuit, tests, correction, Parallelism::default())
}

/// [`find_kind_repairs`] with an explicit worker count: the mixed-radix
/// assignment space is sharded into contiguous index ranges claimed off
/// the pool's shared index, one reusable [`PackedSim`] per worker.
///
/// Each assignment overrides *every* correction site, so a worker's
/// engine needs no override clearing between assignments and the screen
/// is independent of how the space is sharded — the repair list is
/// bit-identical (same order) for every thread count.
///
/// # Panics
///
/// Panics if `correction.len() > 4` (library search is `6^n`).
pub fn find_kind_repairs_par(
    circuit: &Circuit,
    tests: &TestSet,
    correction: &[GateId],
    parallelism: Parallelism,
) -> Vec<KindRepair> {
    assert!(
        correction.len() <= 4,
        "library search limited to 4 simultaneous sites"
    );
    let menus: Vec<Vec<GateKind>> = correction
        .iter()
        .map(|&g| {
            GateKind::compatible_with_arity(circuit.gate(g).arity())
                .iter()
                .copied()
                .filter(|&k| k != circuit.gate(g).kind())
                .collect()
        })
        .collect();
    let total: usize = menus.iter().map(|m| m.len()).product();
    if total == 0 {
        return Vec::new();
    }

    // One packed batch carries every test; lane t is test t. The packed
    // input words are shared read-only by every worker.
    let vectors: Vec<&[bool]> = tests.iter().map(|t| t.vector.as_slice()).collect();
    let mut packed = Vec::new();
    let words = pack_vectors_into(circuit, &vectors, &mut packed);
    let packed = packed; // freeze for capture

    // Shard the assignment index space into contiguous chunks; several
    // chunks per worker so stealing evens out uneven cone sizes. Every
    // worker pays one full baseline sweep in `init`, so under `Auto`
    // small assignment spaces (1-2 sites) stay inline — the floor of 256
    // assignments is where per-assignment cone propagation starts to
    // dwarf the per-worker sweep.
    let workers = parallelism.workers_for(total, total, 256);
    let chunk = if workers > 1 {
        total.div_ceil(workers * 4).max(8)
    } else {
        total
    };
    let chunks = total.div_ceil(chunk);
    let per_chunk: Vec<Vec<KindRepair>> = parallel_map_init(
        workers,
        chunks,
        || {
            let mut sim = PackedSim::new(circuit);
            sim.reset(words);
            sim.set_input_words(&packed);
            sim.sweep();
            sim
        },
        |sim, c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(total);
            // Decode the first index of the range into a mixed-radix
            // counter (position 0 is the least significant digit, as in
            // the sequential enumeration).
            let mut choice: Vec<usize> = Vec::with_capacity(menus.len());
            let mut rest = lo;
            for menu in &menus {
                choice.push(rest % menu.len());
                rest /= menu.len();
            }
            let mut repairs = Vec::new();
            for _ in lo..hi {
                let assignment: KindRepair = correction
                    .iter()
                    .zip(&choice)
                    .enumerate()
                    .map(|(pos, (&g, &c))| (g, menus[pos][c]))
                    .collect();
                for &(g, kind) in &assignment {
                    sim.override_kind(g, kind);
                }
                sim.propagate();
                let fixes_all = tests
                    .iter()
                    .enumerate()
                    .all(|(lane, t)| sim.lane(t.output, lane) == t.expected);
                if fixes_all {
                    repairs.push(assignment);
                }
                // Advance the mixed-radix counter.
                let mut pos = 0;
                while pos < choice.len() {
                    choice[pos] += 1;
                    if choice[pos] < menus[pos].len() {
                        break;
                    }
                    choice[pos] = 0;
                    pos += 1;
                }
            }
            repairs
        },
    );
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use gatediag_netlist::{inject_errors, RandomCircuitSpec};
    use gatediag_sim::simulate;

    #[allow(clippy::type_complexity)]
    fn setup(seed: u64, p: usize) -> Option<(Circuit, Vec<(GateId, GateKind)>, TestSet)> {
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(seed).generate();
        let (faulty, sites) = inject_errors(&golden, p, seed);
        let tests = generate_failing_tests(&golden, &faulty, 8, seed, 8192);
        if tests.is_empty() {
            None
        } else {
            Some((
                faulty,
                sites.iter().map(|s| (s.gate, s.original)).collect(),
                tests,
            ))
        }
    }

    #[test]
    fn original_kind_is_among_repairs() {
        for seed in 0..6 {
            let Some((faulty, originals, tests)) = setup(seed, 1) else {
                continue;
            };
            let correction: Vec<GateId> = originals.iter().map(|&(g, _)| g).collect();
            let repairs = find_kind_repairs(&faulty, &tests, &correction);
            assert!(
                repairs.contains(&originals),
                "seed {seed}: original {originals:?} missing from {repairs:?}"
            );
        }
    }

    #[test]
    fn repairs_really_fix_the_tests() {
        for seed in 0..4 {
            let Some((faulty, originals, tests)) = setup(seed, 2) else {
                continue;
            };
            let correction: Vec<GateId> = originals.iter().map(|&(g, _)| g).collect();
            let repairs = find_kind_repairs(&faulty, &tests, &correction);
            assert!(!repairs.is_empty(), "seed {seed}: no repair found");
            for repair in &repairs {
                let mut repaired = faulty.clone();
                for &(g, kind) in repair {
                    repaired = repaired.with_gate_kind(g, kind);
                }
                for t in &tests {
                    let v = simulate(&repaired, &t.vector);
                    assert_eq!(v[t.output.index()], t.expected);
                }
            }
        }
    }

    #[test]
    fn observations_exist_for_valid_corrections() {
        for seed in 0..4 {
            let Some((faulty, originals, tests)) = setup(seed, 1) else {
                continue;
            };
            let correction: Vec<GateId> = originals.iter().map(|&(g, _)| g).collect();
            let obs = correction_observations(&faulty, &tests, &correction)
                .expect("error sites form a valid correction");
            assert_eq!(obs.len(), 1);
            let (gate, observations) = &obs[0];
            assert_eq!(*gate, correction[0]);
            assert_eq!(observations.len(), tests.len());
            for (i, o) in observations.iter().enumerate() {
                assert_eq!(o.test_index, i);
                assert_eq!(o.fanin_values.len(), faulty.gate(*gate).arity());
            }
        }
    }

    #[test]
    fn observations_none_for_invalid_correction() {
        let Some((faulty, _, tests)) = setup(1, 1) else {
            return;
        };
        // Find a gate that alone cannot rectify.
        let hopeless = faulty.iter().find(|(id, g)| {
            !g.kind().is_source() && !crate::validity::is_valid_correction(&faulty, &tests, &[*id])
        });
        if let Some((id, _)) = hopeless {
            assert!(correction_observations(&faulty, &tests, &[id]).is_none());
        }
    }

    #[test]
    fn observations_are_consistent_with_original_kind() {
        // For the real error site, the original function evaluated on the
        // observed fan-in values must produce a value that could rectify —
        // check that the original kind is consistent with at least one
        // model's observations per test... weaker: simulate repaired
        // circuit and confirm expected outputs (already covered), here we
        // just check observation shape on a single-error case against the
        // golden circuit's values.
        let golden = RandomCircuitSpec::new(6, 3, 40).seed(9).generate();
        let (faulty, sites) = inject_errors(&golden, 1, 9);
        let tests = generate_failing_tests(&golden, &faulty, 6, 9, 8192);
        if tests.is_empty() {
            return;
        }
        let site = sites[0].gate;
        let obs = correction_observations(&faulty, &tests, &[site]).unwrap();
        let observations = &obs[0].1;
        // The observations must form a partial function consistent with
        // SOME same-arity kind OR be realisable only by a non-library
        // function; when consistent with the original kind, evaluating it
        // must match the injected value for that model.
        let original = sites[0].original;
        for o in observations {
            let value = original.eval_bool(o.fanin_values.iter().copied());
            // Not asserting equality (other models exist), but the data
            // must be well-formed booleans — exercised by using them:
            let _ = value;
        }
    }
}
