//! Engine-agnostic diagnosis entry points.
//!
//! The engines of this crate ([`basic_sim_diagnose`], [`sc_diagnose`],
//! [`basic_sat_diagnose`], [`hybrid_seeded_bsat`]) each have their own
//! option and result types, mirroring the paper's presentation. Callers
//! that sweep *across* engines — the campaign runner, the CLI — need one
//! uniform surface instead: pick an engine by name, run it with shared
//! limits, get back a normalised result. [`run_engine`] is that surface.
//!
//! Every run is deterministic in its inputs: the configured
//! [`Parallelism`] only trades wall time (all underlying flows are
//! bit-identical for every worker count), so two runs of the same
//! `(engine, circuit, tests, config)` tuple produce identical
//! [`EngineRun`]s.

use crate::bsat::{basic_sat_diagnose, BsatOptions};
use crate::bsim::{basic_sim_diagnose, BsimOptions};
use crate::budget::{Budget, Truncation};
use crate::chaos::{ChaosEvent, ChaosPolicy};
use crate::cov::{sc_diagnose, CovOptions};
use crate::hybrid::hybrid_seeded_bsat;
use crate::sequential::{
    sequential_sat_diagnose, sequential_sim_diagnose, SeqBsatOptions, SequenceTestSet,
};
use crate::test_set::TestSet;
use crate::testgen::{generate_discriminating_tests, TestGenOutcome, TestGenPolicy};
use crate::validity::{screen_valid_corrections_metered, ValidityBackend};
use gatediag_netlist::{Circuit, GateId};
use gatediag_sat::SolverStats;
use gatediag_sim::Parallelism;
use std::fmt;
use std::time::Instant;

/// Which diagnosis engine to run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EngineKind {
    /// Path-tracing simulation ([`basic_sim_diagnose`], paper Fig. 1).
    /// Produces marked candidates, no validity guarantee; the single
    /// reported "solution" is `G_max`.
    Bsim,
    /// Set-covering enumeration ([`sc_diagnose`], paper Fig. 4):
    /// irredundant covers of the BSIM candidate sets, no validity
    /// guarantee.
    Cov,
    /// SAT-based enumeration ([`basic_sat_diagnose`], paper Fig. 3):
    /// exactly all irredundant *valid* corrections up to `k`.
    Bsat,
    /// The Sec. 6 hybrid: BSIM marks seed the SAT engine's decision
    /// heuristic ([`hybrid_seeded_bsat`]).
    Hybrid,
    /// COV covers screened through the auto-dispatching
    /// [`ValidityOracle`](crate::ValidityOracle)
    /// ([`screen_valid_corrections_metered`]): like BSAT everything
    /// reported is a valid correction, but candidates come from
    /// simulation covers and each validity call picks the sim or SAT
    /// backend per [`crate::resolve_validity_backend`].
    Auto,
    /// Sequential path tracing across time frames
    /// ([`sequential_sim_diagnose`]): the BSIM analogue over
    /// multi-frame [`SequenceTestSet`]s, run via
    /// [`run_sequential_engine`].
    SeqBsim,
    /// Sequential SAT diagnosis by time-frame expansion
    /// ([`sequential_sat_diagnose`]): the BSAT analogue over
    /// [`SequenceTestSet`]s, run via [`run_sequential_engine`].
    SeqBsat,
}

impl EngineKind {
    /// All *combinational* engines (the [`run_engine`] family), in a
    /// stable order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Bsim,
        EngineKind::Cov,
        EngineKind::Bsat,
        EngineKind::Hybrid,
        EngineKind::Auto,
    ];

    /// The sequential engines (the [`run_sequential_engine`] family), in
    /// a stable order.
    pub const SEQUENTIAL: [EngineKind; 2] = [EngineKind::SeqBsim, EngineKind::SeqBsat];

    /// The canonical CLI spelling of the engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Bsim => "bsim",
            EngineKind::Cov => "cov",
            EngineKind::Bsat => "bsat",
            EngineKind::Hybrid => "hybrid",
            EngineKind::Auto => "auto",
            EngineKind::SeqBsim => "seq-bsim",
            EngineKind::SeqBsat => "seq-bsat",
        }
    }

    /// Parses a CLI spelling (case-insensitive).
    pub fn parse(text: &str) -> Option<EngineKind> {
        let t = text.to_ascii_lowercase();
        EngineKind::ALL
            .into_iter()
            .chain(EngineKind::SEQUENTIAL)
            .find(|e| e.name() == t)
    }

    /// `true` for the sequential engines (which take a
    /// [`SequenceTestSet`] via [`run_sequential_engine`] instead of a
    /// [`TestSet`] via [`run_engine`]).
    pub fn is_sequential(self) -> bool {
        matches!(self, EngineKind::SeqBsim | EngineKind::SeqBsat)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared limits and knobs for [`run_engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Correction size bound `k` (ignored by [`EngineKind::Bsim`]).
    pub k: usize,
    /// Enumeration cap; `complete = false` when hit.
    pub max_solutions: usize,
    /// Conflict budget for every SAT search the run performs — including
    /// the [`EngineKind::Auto`] validity screen's SAT backend (`None` =
    /// unlimited). Folded into [`EngineConfig::budget`]'s conflict limit
    /// (the smaller wins).
    pub conflict_budget: Option<u64>,
    /// Cooperative work/deadline budget (see [`crate::budget`]): the
    /// deterministic work limit counts engine-defined units and keeps
    /// truncated runs bit-identical across worker counts; the wall
    /// deadline is opt-in and nondeterministic. Anchored once at
    /// [`run_engine`] entry so composite engines race one deadline.
    pub budget: Budget,
    /// Validity backend for the [`EngineKind::Auto`] screen. The default
    /// [`ValidityBackend::Auto`] dispatches per candidate set; pinning
    /// [`ValidityBackend::Sat`] forces the SAT oracle (whose conflicts
    /// then count toward the run's stats and budget).
    pub validity_backend: ValidityBackend,
    /// Worker-pool policy threaded into the engine options. Results are
    /// bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Deterministic fault injection for this run (see [`crate::chaos`]).
    /// [`ChaosPolicy::off`] — the default — is a guaranteed no-op; a
    /// bound policy may panic at entry or shrink the work budget, but
    /// always as a pure function of its `(seed, key)` pair, so chaos
    /// runs stay bit-identical across worker counts too.
    pub chaos: ChaosPolicy,
    /// When `Some`, run the SAT-guided discriminating-test generation
    /// phase (see [`crate::testgen`]) over the engine's solutions after
    /// diagnosis. Requires [`EngineConfig::reference`]. Off by default.
    pub test_gen: Option<TestGenPolicy>,
    /// The golden reference circuit the test-generation phase diffs
    /// against. Only consulted when [`EngineConfig::test_gen`] is `Some`.
    pub reference: Option<Circuit>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            k: 1,
            max_solutions: 10_000,
            conflict_budget: None,
            budget: Budget::default(),
            validity_backend: ValidityBackend::default(),
            parallelism: Parallelism::default(),
            chaos: ChaosPolicy::off(),
            test_gen: None,
            reference: None,
        }
    }
}

/// Normalised result of one engine run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EngineRun {
    /// The engine that produced this run.
    pub engine: EngineKind,
    /// Union of all implicated gates, sorted by id: the BSIM mark union,
    /// or the union of all solutions for the enumerating engines.
    pub candidates: Vec<GateId>,
    /// Candidate corrections. For [`EngineKind::Bsim`] this is the single
    /// set `G_max` (the gates marked by the maximal number of tests);
    /// for the enumerating engines it is the solution list, sorted by
    /// (size, lexicographic).
    pub solutions: Vec<Vec<GateId>>,
    /// `false` when `max_solutions` or the budget truncated the run.
    pub complete: bool,
    /// Why the run stopped early, if it did: a budget reason (surfaced by
    /// the campaign layer as a *preempted* instance) or
    /// [`Truncation::Solutions`] for the enumeration cap. Always `Some`
    /// exactly when `complete` is `false`.
    pub truncation: Option<Truncation>,
    /// SAT search statistics: the diagnosis solver's counters for the SAT
    /// engines, the validity screen's accumulated SAT counters for
    /// [`EngineKind::Auto`] (all zero when only simulation ran), plus the
    /// test-generation phase's counters when it ran.
    pub stats: SolverStats,
    /// Result of the discriminating-test generation phase: `Some` exactly
    /// when [`EngineConfig::test_gen`] was set and the diagnosis itself
    /// was not budget-preempted. [`EngineRun::solutions`] stays the
    /// *pre-shrinkage* list; the outcome carries the survivors.
    pub test_gen: Option<TestGenOutcome>,
}

fn union_of(circuit: &Circuit, solutions: &[Vec<GateId>]) -> Vec<GateId> {
    let mut seen = vec![false; circuit.len()];
    for sol in solutions {
        for &g in sol {
            seen[g.index()] = true;
        }
    }
    seen.iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(i, _)| GateId::new(i))
        .collect()
}

/// Resolves the run budget shared by [`run_engine`] and
/// [`run_sequential_engine`]: the legacy conflict knob folds in, the
/// anchor is set once so every phase races the same wall deadline, and
/// chaos injection happens before any engine work — an injected failure
/// can never leave a half-updated result behind, and the budget
/// mutations flow through the ordinary preemption machinery rather than
/// a parallel code path.
fn armed_budget(engine: EngineKind, config: &EngineConfig) -> Budget {
    let mut budget = config
        .budget
        .merge_conflicts(config.conflict_budget)
        .anchored(Instant::now());
    match config.chaos.decide() {
        None => {}
        Some(ChaosEvent::Panic) => {
            gatediag_obs::count("chaos.injections", 1);
            panic!("chaos: injected panic before {engine} run");
        }
        Some(ChaosEvent::InflateWork) => {
            gatediag_obs::count("chaos.injections", 1);
            // Simulate a run that costs ~4x its budget: quarter the work
            // limit (or impose a small one where there was none).
            budget.work = Some(budget.work.map_or(4, |w| (w / 4).max(1)));
        }
        Some(ChaosEvent::SpuriousPreempt) => {
            gatediag_obs::count("chaos.injections", 1);
            // A zero work budget preempts the sim-side engines at their
            // first charge and caps SAT searches at zero conflicts.
            budget.work = Some(0);
        }
    }
    budget
}

/// Runs one engine on `(circuit, tests)` under shared limits.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, run_engine, EngineConfig, EngineKind};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let run = run_engine(EngineKind::Bsat, &faulty, &tests, &EngineConfig::default());
/// assert!(run.solutions.contains(&vec![sites[0].gate]));
/// assert!(run.candidates.contains(&sites[0].gate));
/// ```
pub fn run_engine(
    engine: EngineKind,
    circuit: &Circuit,
    tests: &TestSet,
    config: &EngineConfig,
) -> EngineRun {
    let budget = armed_budget(engine, config);
    let mut run = match engine {
        EngineKind::Bsim => {
            let result = {
                let _phase = gatediag_obs::span("trace");
                basic_sim_diagnose(
                    circuit,
                    tests,
                    BsimOptions {
                        parallelism: config.parallelism,
                        budget,
                        ..BsimOptions::default()
                    },
                )
            };
            let gmax = result.gmax();
            EngineRun {
                engine,
                candidates: result.union.iter().collect(),
                solutions: if gmax.is_empty() { vec![] } else { vec![gmax] },
                complete: result.truncation.is_none(),
                truncation: result.truncation,
                stats: SolverStats::default(),
                test_gen: None,
            }
        }
        EngineKind::Cov => {
            let result = {
                let _phase = gatediag_obs::span("cover");
                sc_diagnose(
                    circuit,
                    tests,
                    config.k,
                    CovOptions {
                        max_solutions: config.max_solutions,
                        parallelism: config.parallelism,
                        budget,
                        bsim: BsimOptions {
                            parallelism: config.parallelism,
                            ..BsimOptions::default()
                        },
                        ..CovOptions::default()
                    },
                )
            };
            EngineRun {
                engine,
                candidates: union_of(circuit, &result.solutions),
                solutions: result.solutions,
                complete: result.truncation.is_none(),
                truncation: result.truncation,
                stats: SolverStats::default(),
                test_gen: None,
            }
        }
        EngineKind::Bsat | EngineKind::Hybrid => {
            let options = BsatOptions {
                max_solutions: config.max_solutions,
                budget,
                parallelism: config.parallelism,
                ..BsatOptions::default()
            };
            let result = {
                let _phase = gatediag_obs::span("solve");
                if engine == EngineKind::Hybrid {
                    hybrid_seeded_bsat(circuit, tests, config.k, options)
                } else {
                    basic_sat_diagnose(circuit, tests, config.k, options)
                }
            };
            EngineRun {
                engine,
                candidates: union_of(circuit, &result.solutions),
                solutions: result.solutions,
                complete: result.truncation.is_none(),
                truncation: result.truncation,
                stats: result.stats,
                test_gen: None,
            }
        }
        EngineKind::Auto => {
            let cov = {
                let _phase = gatediag_obs::span("cover");
                sc_diagnose(
                    circuit,
                    tests,
                    config.k,
                    CovOptions {
                        max_solutions: config.max_solutions,
                        parallelism: config.parallelism,
                        budget,
                        bsim: BsimOptions {
                            parallelism: config.parallelism,
                            ..BsimOptions::default()
                        },
                        ..CovOptions::default()
                    },
                )
            };
            // The screen — like every phase — gets the full work budget
            // in its own unit (sets screened; phase units are not
            // commensurable, so they are never summed across phases),
            // the run's conflict budget (so `auto` instances have the
            // same runaway guard as the SAT engines) and the shared
            // deadline; its SAT counters are the run's stats instead of
            // being silently dropped.
            let screen = {
                let _phase = gatediag_obs::span("screen");
                screen_valid_corrections_metered(
                    circuit,
                    tests,
                    &cov.solutions,
                    config.parallelism,
                    config.validity_backend,
                    &budget,
                )
            };
            let solutions: Vec<Vec<GateId>> = cov
                .solutions
                .iter()
                .zip(&screen.verdicts)
                .filter(|(_, &valid)| valid)
                .map(|(sol, _)| sol.clone())
                .collect();
            // Budget preemptions outrank the enumeration cap: a screen
            // that gave up must surface as `preempted` even when the COV
            // phase had already hit `max_solutions`.
            let truncation = Truncation::merge(cov.truncation, screen.truncation);
            EngineRun {
                engine,
                candidates: union_of(circuit, &solutions),
                solutions,
                complete: truncation.is_none(),
                truncation,
                stats: screen.stats,
                test_gen: None,
            }
        }
        EngineKind::SeqBsim | EngineKind::SeqBsat => panic!(
            "{engine} is a sequential engine: use run_sequential_engine with a SequenceTestSet"
        ),
    };
    // The TestGen phase runs after diagnosis, over the reported
    // solutions, unless the diagnosis was already budget-preempted (its
    // partial solution list would make the shrinkage columns
    // meaningless). Like every phase it receives the full run budget in
    // its own work unit (SAT queries) and the shared conflict limit and
    // deadline; its truncation merges through the usual channel so a
    // budget-stopped phase surfaces as a preempted run.
    if let Some(policy) = &config.test_gen {
        if !run.truncation.is_some_and(|t| t.is_preemption()) {
            let golden = config
                .reference
                .as_ref()
                .expect("EngineConfig::test_gen requires EngineConfig::reference");
            let outcome = {
                let _phase = gatediag_obs::span("testgen");
                generate_discriminating_tests(
                    golden,
                    circuit,
                    &run.solutions,
                    policy,
                    &budget,
                    config.parallelism,
                    config.validity_backend,
                )
            };
            run.stats.absorb(&outcome.stats);
            run.truncation = Truncation::merge(run.truncation, outcome.truncation);
            run.complete = run.truncation.is_none();
            run.test_gen = Some(outcome);
        }
    }
    run
}

/// Runs one *sequential* engine on `(circuit, tests)` under the same
/// shared limits as [`run_engine`]: the budget is merged and anchored
/// identically, chaos injection goes through the same preamble, and the
/// result is normalised into the same [`EngineRun`] shape (for
/// [`EngineKind::SeqBsim`] the single reported solution is `G_max`,
/// mirroring BSIM).
///
/// The discriminating-test-generation phase is combinational-only and
/// never runs here ([`EngineConfig::test_gen`] is ignored;
/// `run.test_gen` is always `None`). An empty test set yields an empty,
/// complete run for either engine.
///
/// # Panics
///
/// Panics if `engine` is not one of [`EngineKind::SEQUENTIAL`].
///
/// # Examples
///
/// ```
/// use gatediag_core::{
///     generate_failing_sequences, run_sequential_engine, EngineConfig, EngineKind,
/// };
/// use gatediag_netlist::{inject_errors, RandomCircuitSpec};
///
/// let golden = RandomCircuitSpec::new(5, 3, 30).latches(3).seed(1).generate();
/// let (faulty, sites) = inject_errors(&golden, 1, 1);
/// let tests = generate_failing_sequences(&golden, &faulty, 3, 4, 1, 1024);
/// if !tests.is_empty() {
///     let run = run_sequential_engine(
///         EngineKind::SeqBsat,
///         &faulty,
///         &tests,
///         &EngineConfig::default(),
///     );
///     assert!(run.solutions.contains(&vec![sites[0].gate]));
/// }
/// ```
pub fn run_sequential_engine(
    engine: EngineKind,
    circuit: &Circuit,
    tests: &SequenceTestSet,
    config: &EngineConfig,
) -> EngineRun {
    assert!(
        engine.is_sequential(),
        "{engine} is a combinational engine: use run_engine with a TestSet"
    );
    let budget = armed_budget(engine, config);
    if tests.is_empty() {
        return EngineRun {
            engine,
            candidates: Vec::new(),
            solutions: Vec::new(),
            complete: true,
            truncation: None,
            stats: SolverStats::default(),
            test_gen: None,
        };
    }
    match engine {
        EngineKind::SeqBsim => {
            let result = {
                let _phase = gatediag_obs::span("trace");
                sequential_sim_diagnose(
                    circuit,
                    tests,
                    BsimOptions {
                        parallelism: config.parallelism,
                        budget,
                        ..BsimOptions::default()
                    },
                )
            };
            let gmax = result.gmax();
            EngineRun {
                engine,
                candidates: result.union.iter().collect(),
                solutions: if gmax.is_empty() { vec![] } else { vec![gmax] },
                complete: result.truncation.is_none(),
                truncation: result.truncation,
                stats: SolverStats::default(),
                test_gen: None,
            }
        }
        EngineKind::SeqBsat => {
            let result = {
                let _phase = gatediag_obs::span("solve");
                sequential_sat_diagnose(
                    circuit,
                    tests,
                    config.k,
                    SeqBsatOptions {
                        max_solutions: config.max_solutions,
                        budget,
                    },
                )
            };
            EngineRun {
                engine,
                candidates: union_of(circuit, &result.solutions),
                solutions: result.solutions,
                complete: result.complete,
                truncation: result.truncation,
                stats: result.stats,
                test_gen: None,
            }
        }
        _ => unreachable!("guarded by is_sequential above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    fn workload() -> (Circuit, Vec<GateId>, TestSet) {
        // Scan seeds until the injected error is observable.
        for seed in 0..32u64 {
            let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 14);
            if !tests.is_empty() {
                return (faulty, sites.iter().map(|s| s.gate).collect(), tests);
            }
        }
        panic!("no seed yields an observable injection");
    }

    #[test]
    fn engine_parsing_round_trips() {
        for engine in EngineKind::ALL {
            assert_eq!(EngineKind::parse(engine.name()), Some(engine));
        }
        assert_eq!(EngineKind::parse("BSAT"), Some(EngineKind::Bsat));
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn every_engine_implicates_the_error_site() {
        let (faulty, errors, tests) = workload();
        for engine in EngineKind::ALL {
            let run = run_engine(engine, &faulty, &tests, &EngineConfig::default());
            assert_eq!(run.engine, engine);
            assert!(
                run.candidates.iter().any(|g| errors.contains(g)),
                "{engine}: error site not implicated"
            );
            // Candidates are sorted and deduplicated.
            assert!(run.candidates.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bsat_run_matches_direct_call() {
        let (faulty, _, tests) = workload();
        let config = EngineConfig::default();
        let run = run_engine(EngineKind::Bsat, &faulty, &tests, &config);
        let direct = basic_sat_diagnose(&faulty, &tests, config.k, BsatOptions::default());
        assert_eq!(run.solutions, direct.solutions);
        assert_eq!(run.complete, direct.complete);
        assert_eq!(run.stats, direct.stats);
    }

    #[test]
    fn auto_engine_reports_only_valid_corrections() {
        let (faulty, _, tests) = workload();
        let run = run_engine(EngineKind::Auto, &faulty, &tests, &EngineConfig::default());
        for sol in &run.solutions {
            assert!(
                is_valid_correction(&faulty, &tests, sol),
                "auto engine reported an invalid correction {sol:?}"
            );
        }
        // Auto solutions are exactly the valid subset of the COV covers.
        let cov = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
        for sol in &run.solutions {
            assert!(cov.solutions.contains(sol));
        }
    }

    #[test]
    fn runs_are_worker_count_invariant() {
        let (faulty, _, tests) = workload();
        for engine in EngineKind::ALL {
            let sequential = run_engine(
                engine,
                &faulty,
                &tests,
                &EngineConfig {
                    parallelism: Parallelism::Sequential,
                    ..EngineConfig::default()
                },
            );
            for workers in [2usize, 8] {
                let parallel = run_engine(
                    engine,
                    &faulty,
                    &tests,
                    &EngineConfig {
                        parallelism: Parallelism::Fixed(workers),
                        ..EngineConfig::default()
                    },
                );
                assert_eq!(
                    sequential, parallel,
                    "{engine} drifted at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn auto_engine_accumulates_sat_validity_stats() {
        // Regression: the auto engine used to return
        // `SolverStats::default()`, hiding every conflict/decision its
        // SAT-backed validity calls actually burned. With the backend
        // pinned to SAT, the screen runs a solver per cover and the run
        // must report that work.
        let (faulty, _, tests) = workload();
        let config = EngineConfig {
            validity_backend: ValidityBackend::Sat,
            ..EngineConfig::default()
        };
        let run = run_engine(EngineKind::Auto, &faulty, &tests, &config);
        assert!(
            !run.solutions.is_empty(),
            "workload must produce screened covers"
        );
        assert!(
            run.stats.propagations > 0 && run.stats.decisions > 0,
            "SAT validity work hidden again: {:?}",
            run.stats
        );
        // The pinned-SAT screen agrees with the auto-dispatched one.
        let auto = run_engine(EngineKind::Auto, &faulty, &tests, &EngineConfig::default());
        assert_eq!(run.solutions, auto.solutions);
    }

    #[test]
    fn auto_engine_respects_the_conflict_budget() {
        // Regression: `EngineKind::Auto` dropped
        // `EngineConfig::conflict_budget` entirely — campaign `auto`
        // instances had no runaway guard. Find a workload whose SAT
        // validity screen really conflicts, then pin a 1-conflict budget:
        // the screen must give up (truncation = conflicts, run
        // preempt-marked) instead of ignoring the budget.
        for seed in 0..16u64 {
            let golden = RandomCircuitSpec::new(6, 3, 60).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 2, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 14);
            if tests.is_empty() {
                continue;
            }
            let unbudgeted = run_engine(
                EngineKind::Auto,
                &faulty,
                &tests,
                &EngineConfig {
                    k: 2,
                    validity_backend: ValidityBackend::Sat,
                    ..EngineConfig::default()
                },
            );
            if unbudgeted.stats.conflicts == 0 {
                continue; // screen too easy to exercise the budget
            }
            let budgeted = run_engine(
                EngineKind::Auto,
                &faulty,
                &tests,
                &EngineConfig {
                    k: 2,
                    validity_backend: ValidityBackend::Sat,
                    conflict_budget: Some(1),
                    ..EngineConfig::default()
                },
            );
            assert_eq!(
                budgeted.truncation,
                Some(Truncation::Conflicts),
                "seed {seed}: conflict budget ignored by the auto engine"
            );
            assert!(!budgeted.complete);
            // Deterministic: the budgeted run reproduces itself.
            let again = run_engine(
                EngineKind::Auto,
                &faulty,
                &tests,
                &EngineConfig {
                    k: 2,
                    validity_backend: ValidityBackend::Sat,
                    conflict_budget: Some(1),
                    ..EngineConfig::default()
                },
            );
            assert_eq!(budgeted, again);
            return;
        }
        panic!("no workload made the SAT validity screen conflict");
    }

    #[test]
    fn budget_preemption_outranks_the_enumeration_cap() {
        // The Auto merge must never let the cap reason (`Solutions`, an
        // `ok` outcome) mask a budget preemption from either phase — a
        // campaign would then record a tripped budget guard as `ok`.
        assert_eq!(
            Truncation::merge(Some(Truncation::Solutions), Some(Truncation::Conflicts)),
            Some(Truncation::Conflicts)
        );
        assert_eq!(
            Truncation::merge(Some(Truncation::Work), Some(Truncation::Solutions)),
            Some(Truncation::Work)
        );
        assert_eq!(
            Truncation::merge(Some(Truncation::Deadline), Some(Truncation::Work)),
            Some(Truncation::Deadline)
        );
        assert_eq!(
            Truncation::merge(Some(Truncation::Solutions), None),
            Some(Truncation::Solutions)
        );
        assert_eq!(Truncation::merge(None, None), None);
    }

    #[test]
    fn work_budget_preempts_every_engine_deterministically() {
        let (faulty, _, tests) = workload();
        for engine in EngineKind::ALL {
            let config = EngineConfig {
                k: 2,
                budget: Budget {
                    // One unit: every engine's first work quantum
                    // exhausts it (one test traced / one node / one
                    // conflict-capped query).
                    work: Some(1),
                    ..Budget::default()
                },
                ..EngineConfig::default()
            };
            let run = run_engine(engine, &faulty, &tests, &config);
            if let Some(reason) = run.truncation {
                assert!(!run.complete, "{engine}: truncated but complete");
                assert!(
                    reason.is_preemption() || reason == Truncation::Solutions,
                    "{engine}: unexpected reason {reason:?}"
                );
            }
            // The sim-side engines must actually preempt on one unit of
            // work (BSAT may legitimately finish within one conflict).
            if matches!(
                engine,
                EngineKind::Bsim | EngineKind::Cov | EngineKind::Auto
            ) {
                assert_eq!(
                    run.truncation,
                    Some(Truncation::Work),
                    "{engine}: work budget did not preempt"
                );
            }
            // Deterministic across worker counts.
            for workers in [2usize, 8] {
                let parallel = run_engine(
                    engine,
                    &faulty,
                    &tests,
                    &EngineConfig {
                        parallelism: Parallelism::Fixed(workers),
                        ..config.clone()
                    },
                );
                assert_eq!(
                    run, parallel,
                    "{engine}: budgeted run drifted at {workers}w"
                );
            }
        }
    }

    fn golden_workload() -> (Circuit, Circuit, TestSet) {
        for seed in 0..32u64 {
            let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
            let (faulty, _) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 14);
            if !tests.is_empty() {
                return (golden, faulty, tests);
            }
        }
        panic!("no seed yields an observable injection");
    }

    #[test]
    fn test_gen_phase_runs_and_is_worker_count_invariant() {
        let (golden, faulty, tests) = golden_workload();
        let config = |parallelism| EngineConfig {
            test_gen: Some(TestGenPolicy::default()),
            reference: Some(golden.clone()),
            parallelism,
            ..EngineConfig::default()
        };
        let sequential = run_engine(
            EngineKind::Cov,
            &faulty,
            &tests,
            &config(Parallelism::Sequential),
        );
        let outcome = sequential.test_gen.as_ref().expect("phase must run");
        assert_eq!(outcome.solutions_before, sequential.solutions.len());
        assert!(outcome.solutions_after <= outcome.solutions_before);
        // The engine's own solution list stays pre-shrinkage.
        let plain = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
        assert_eq!(sequential.solutions, plain.solutions);
        for workers in [2usize, 8] {
            let parallel = run_engine(
                EngineKind::Cov,
                &faulty,
                &tests,
                &config(Parallelism::Fixed(workers)),
            );
            assert_eq!(sequential, parallel, "test-gen run drifted at {workers}w");
        }
    }

    #[test]
    fn preempted_diagnosis_skips_the_test_gen_phase() {
        let (golden, faulty, tests) = golden_workload();
        let run = run_engine(
            EngineKind::Cov,
            &faulty,
            &tests,
            &EngineConfig {
                test_gen: Some(TestGenPolicy::default()),
                reference: Some(golden),
                budget: Budget {
                    work: Some(1),
                    ..Budget::default()
                },
                ..EngineConfig::default()
            },
        );
        assert_eq!(run.truncation, Some(Truncation::Work));
        assert!(run.test_gen.is_none(), "phase ran on a preempted diagnosis");
    }

    #[test]
    fn test_gen_budget_exhaustion_surfaces_as_testgen_preemption() {
        let (golden, faulty, tests) = golden_workload();
        let run = run_engine(
            EngineKind::Cov,
            &faulty,
            &tests,
            &EngineConfig {
                test_gen: Some(TestGenPolicy {
                    budget: Budget {
                        work: Some(0),
                        ..Budget::default()
                    },
                    ..TestGenPolicy::default()
                }),
                reference: Some(golden),
                ..EngineConfig::default()
            },
        );
        assert!(!run.solutions.is_empty(), "workload must produce covers");
        assert_eq!(run.truncation, Some(Truncation::TestGen));
        assert!(!run.complete);
        let outcome = run.test_gen.as_ref().unwrap();
        // Zero queries ran: nothing refuted, everything survives.
        assert_eq!(outcome.solutions_after, outcome.solutions_before);
        assert!(outcome.tests.is_empty());
    }

    #[test]
    fn truncation_clears_complete() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
        let run = run_engine(
            EngineKind::Bsat,
            &faulty,
            &tests,
            &EngineConfig {
                k: 2,
                max_solutions: 1,
                ..EngineConfig::default()
            },
        );
        assert_eq!(run.solutions.len(), 1);
        assert!(!run.complete);
        // The enumeration cap is reported as `Solutions`, not as a
        // budget preemption.
        assert_eq!(run.truncation, Some(Truncation::Solutions));
        assert!(!run.truncation.unwrap().is_preemption());
    }

    use crate::sequential::generate_failing_sequences;

    fn sequential_workload() -> (Circuit, Vec<GateId>, SequenceTestSet) {
        for seed in 0..32u64 {
            let golden = RandomCircuitSpec::new(5, 3, 30)
                .latches(3)
                .seed(seed)
                .generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_sequences(&golden, &faulty, 3, 6, seed, 1 << 12);
            if tests.len() >= 2 {
                return (faulty, sites.iter().map(|s| s.gate).collect(), tests);
            }
        }
        panic!("no seed yields an observable sequential injection");
    }

    #[test]
    fn sequential_engine_parsing_round_trips() {
        for engine in EngineKind::SEQUENTIAL {
            assert_eq!(EngineKind::parse(engine.name()), Some(engine));
            assert!(engine.is_sequential());
        }
        for engine in EngineKind::ALL {
            assert!(!engine.is_sequential());
        }
        assert_eq!(EngineKind::parse("SEQ-BSAT"), Some(EngineKind::SeqBsat));
        assert_eq!(EngineKind::parse("seq-bsim"), Some(EngineKind::SeqBsim));
    }

    #[test]
    fn sequential_engines_implicate_the_error_site() {
        let (faulty, errors, tests) = sequential_workload();
        for engine in EngineKind::SEQUENTIAL {
            let run = run_sequential_engine(engine, &faulty, &tests, &EngineConfig::default());
            assert_eq!(run.engine, engine);
            assert!(
                run.candidates.iter().any(|g| errors.contains(g)),
                "{engine}: error site not implicated"
            );
            assert!(run.candidates.windows(2).all(|w| w[0] < w[1]));
            assert!(run.test_gen.is_none());
        }
        // SeqBsat specifically enumerates the exact single-gate fix.
        let run = run_sequential_engine(
            EngineKind::SeqBsat,
            &faulty,
            &tests,
            &EngineConfig::default(),
        );
        assert!(run.complete);
        assert!(run.solutions.contains(&vec![errors[0]]));
    }

    #[test]
    fn sequential_runs_are_worker_count_invariant() {
        let (faulty, _, tests) = sequential_workload();
        for engine in EngineKind::SEQUENTIAL {
            let sequential = run_sequential_engine(
                engine,
                &faulty,
                &tests,
                &EngineConfig {
                    parallelism: Parallelism::Fixed(1),
                    ..EngineConfig::default()
                },
            );
            for workers in [2usize, 8] {
                let parallel = run_sequential_engine(
                    engine,
                    &faulty,
                    &tests,
                    &EngineConfig {
                        parallelism: Parallelism::Fixed(workers),
                        ..EngineConfig::default()
                    },
                );
                assert_eq!(
                    sequential, parallel,
                    "{engine} drifted at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn sequential_work_budget_preempts_deterministically() {
        let (faulty, _, tests) = sequential_workload();
        for engine in EngineKind::SEQUENTIAL {
            let config = EngineConfig {
                budget: Budget {
                    work: Some(0),
                    ..Budget::default()
                },
                ..EngineConfig::default()
            };
            let run = run_sequential_engine(engine, &faulty, &tests, &config);
            assert_eq!(
                run.truncation,
                Some(Truncation::Work),
                "{engine}: zero work budget did not preempt"
            );
            assert!(!run.complete);
            let again = run_sequential_engine(engine, &faulty, &tests, &config);
            assert_eq!(run, again, "{engine}: preempted run not reproducible");
        }
    }

    #[test]
    fn sequential_chaos_preempt_flows_through_the_budget() {
        use crate::chaos::{ChaosConfig, ChaosPolicy};
        let (faulty, _, tests) = sequential_workload();
        // Find a chaos seed that injects SpuriousPreempt for this key.
        for seed in 0..64u64 {
            let config = ChaosConfig {
                seed,
                rate_ppm: 1_000_000,
            };
            let policy = ChaosPolicy::new(config, ChaosPolicy::key(&["seq-instance"]));
            if policy.decide() != Some(ChaosEvent::SpuriousPreempt) {
                continue;
            }
            let run = run_sequential_engine(
                EngineKind::SeqBsim,
                &faulty,
                &tests,
                &EngineConfig {
                    chaos: policy,
                    ..EngineConfig::default()
                },
            );
            assert_eq!(run.truncation, Some(Truncation::Work));
            return;
        }
        panic!("no chaos seed produced SpuriousPreempt");
    }

    #[test]
    fn sequential_empty_test_set_is_complete() {
        let (faulty, _, _) = sequential_workload();
        for engine in EngineKind::SEQUENTIAL {
            let run = run_sequential_engine(
                engine,
                &faulty,
                &SequenceTestSet::default(),
                &EngineConfig::default(),
            );
            assert!(run.complete);
            assert!(run.solutions.is_empty());
            assert!(run.candidates.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "sequential engine")]
    fn run_engine_rejects_sequential_kinds() {
        let (faulty, _, tests) = workload();
        let _ = run_engine(
            EngineKind::SeqBsim,
            &faulty,
            &tests,
            &EngineConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "combinational engine")]
    fn run_sequential_engine_rejects_combinational_kinds() {
        let (faulty, _, tests) = sequential_workload();
        let _ = run_sequential_engine(EngineKind::Bsat, &faulty, &tests, &EngineConfig::default());
    }
}
