//! Engine-agnostic diagnosis entry points.
//!
//! The engines of this crate ([`basic_sim_diagnose`], [`sc_diagnose`],
//! [`basic_sat_diagnose`], [`hybrid_seeded_bsat`]) each have their own
//! option and result types, mirroring the paper's presentation. Callers
//! that sweep *across* engines — the campaign runner, the CLI — need one
//! uniform surface instead: pick an engine by name, run it with shared
//! limits, get back a normalised result. [`run_engine`] is that surface.
//!
//! Every run is deterministic in its inputs: the configured
//! [`Parallelism`] only trades wall time (all underlying flows are
//! bit-identical for every worker count), so two runs of the same
//! `(engine, circuit, tests, config)` tuple produce identical
//! [`EngineRun`]s.

use crate::bsat::{basic_sat_diagnose, BsatOptions};
use crate::bsim::{basic_sim_diagnose, BsimOptions};
use crate::cov::{sc_diagnose, CovOptions};
use crate::hybrid::hybrid_seeded_bsat;
use crate::test_set::TestSet;
use crate::validity::screen_valid_corrections;
use gatediag_netlist::{Circuit, GateId};
use gatediag_sat::SolverStats;
use gatediag_sim::Parallelism;
use std::fmt;

/// Which diagnosis engine to run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EngineKind {
    /// Path-tracing simulation ([`basic_sim_diagnose`], paper Fig. 1).
    /// Produces marked candidates, no validity guarantee; the single
    /// reported "solution" is `G_max`.
    Bsim,
    /// Set-covering enumeration ([`sc_diagnose`], paper Fig. 4):
    /// irredundant covers of the BSIM candidate sets, no validity
    /// guarantee.
    Cov,
    /// SAT-based enumeration ([`basic_sat_diagnose`], paper Fig. 3):
    /// exactly all irredundant *valid* corrections up to `k`.
    Bsat,
    /// The Sec. 6 hybrid: BSIM marks seed the SAT engine's decision
    /// heuristic ([`hybrid_seeded_bsat`]).
    Hybrid,
    /// COV covers screened through the auto-dispatching
    /// [`ValidityOracle`](crate::ValidityOracle)
    /// ([`screen_valid_corrections`]): like BSAT everything reported is a
    /// valid correction, but candidates come from simulation covers and
    /// each validity call picks the sim or SAT backend per
    /// [`crate::resolve_validity_backend`].
    Auto,
}

impl EngineKind {
    /// All engines, in a stable order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Bsim,
        EngineKind::Cov,
        EngineKind::Bsat,
        EngineKind::Hybrid,
        EngineKind::Auto,
    ];

    /// The canonical CLI spelling of the engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Bsim => "bsim",
            EngineKind::Cov => "cov",
            EngineKind::Bsat => "bsat",
            EngineKind::Hybrid => "hybrid",
            EngineKind::Auto => "auto",
        }
    }

    /// Parses a CLI spelling (case-insensitive).
    pub fn parse(text: &str) -> Option<EngineKind> {
        let t = text.to_ascii_lowercase();
        EngineKind::ALL.into_iter().find(|e| e.name() == t)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared limits and knobs for [`run_engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Correction size bound `k` (ignored by [`EngineKind::Bsim`]).
    pub k: usize,
    /// Enumeration cap; `complete = false` when hit.
    pub max_solutions: usize,
    /// Conflict budget for the SAT engines (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// Worker-pool policy threaded into the engine options. Results are
    /// bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            k: 1,
            max_solutions: 10_000,
            conflict_budget: None,
            parallelism: Parallelism::default(),
        }
    }
}

/// Normalised result of one engine run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EngineRun {
    /// The engine that produced this run.
    pub engine: EngineKind,
    /// Union of all implicated gates, sorted by id: the BSIM mark union,
    /// or the union of all solutions for the enumerating engines.
    pub candidates: Vec<GateId>,
    /// Candidate corrections. For [`EngineKind::Bsim`] this is the single
    /// set `G_max` (the gates marked by the maximal number of tests);
    /// for the enumerating engines it is the solution list, sorted by
    /// (size, lexicographic).
    pub solutions: Vec<Vec<GateId>>,
    /// `false` when `max_solutions` or the conflict budget truncated the
    /// enumeration.
    pub complete: bool,
    /// SAT search statistics (all zero for the pure simulation engines).
    pub stats: SolverStats,
}

fn union_of(circuit: &Circuit, solutions: &[Vec<GateId>]) -> Vec<GateId> {
    let mut seen = vec![false; circuit.len()];
    for sol in solutions {
        for &g in sol {
            seen[g.index()] = true;
        }
    }
    seen.iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(i, _)| GateId::new(i))
        .collect()
}

/// Runs one engine on `(circuit, tests)` under shared limits.
///
/// # Examples
///
/// ```
/// use gatediag_core::{generate_failing_tests, run_engine, EngineConfig, EngineKind};
/// use gatediag_netlist::{c17, inject_errors};
///
/// let golden = c17();
/// let (faulty, sites) = inject_errors(&golden, 1, 42);
/// let tests = generate_failing_tests(&golden, &faulty, 8, 42, 4096);
/// let run = run_engine(EngineKind::Bsat, &faulty, &tests, &EngineConfig::default());
/// assert!(run.solutions.contains(&vec![sites[0].gate]));
/// assert!(run.candidates.contains(&sites[0].gate));
/// ```
pub fn run_engine(
    engine: EngineKind,
    circuit: &Circuit,
    tests: &TestSet,
    config: &EngineConfig,
) -> EngineRun {
    match engine {
        EngineKind::Bsim => {
            let result = basic_sim_diagnose(
                circuit,
                tests,
                BsimOptions {
                    parallelism: config.parallelism,
                    ..BsimOptions::default()
                },
            );
            let gmax = result.gmax();
            EngineRun {
                engine,
                candidates: result.union.iter().collect(),
                solutions: if gmax.is_empty() { vec![] } else { vec![gmax] },
                complete: true,
                stats: SolverStats::default(),
            }
        }
        EngineKind::Cov => {
            let result = sc_diagnose(
                circuit,
                tests,
                config.k,
                CovOptions {
                    max_solutions: config.max_solutions,
                    parallelism: config.parallelism,
                    bsim: BsimOptions {
                        parallelism: config.parallelism,
                        ..BsimOptions::default()
                    },
                    ..CovOptions::default()
                },
            );
            EngineRun {
                engine,
                candidates: union_of(circuit, &result.solutions),
                solutions: result.solutions,
                complete: result.complete,
                stats: SolverStats::default(),
            }
        }
        EngineKind::Bsat | EngineKind::Hybrid => {
            let options = BsatOptions {
                max_solutions: config.max_solutions,
                conflict_budget: config.conflict_budget,
                parallelism: config.parallelism,
                ..BsatOptions::default()
            };
            let result = if engine == EngineKind::Hybrid {
                hybrid_seeded_bsat(circuit, tests, config.k, options)
            } else {
                basic_sat_diagnose(circuit, tests, config.k, options)
            };
            EngineRun {
                engine,
                candidates: union_of(circuit, &result.solutions),
                solutions: result.solutions,
                complete: result.complete,
                stats: result.stats,
            }
        }
        EngineKind::Auto => {
            let cov = sc_diagnose(
                circuit,
                tests,
                config.k,
                CovOptions {
                    max_solutions: config.max_solutions,
                    parallelism: config.parallelism,
                    bsim: BsimOptions {
                        parallelism: config.parallelism,
                        ..BsimOptions::default()
                    },
                    ..CovOptions::default()
                },
            );
            let verdicts =
                screen_valid_corrections(circuit, tests, &cov.solutions, config.parallelism);
            let solutions: Vec<Vec<GateId>> = cov
                .solutions
                .into_iter()
                .zip(verdicts)
                .filter(|(_, valid)| *valid)
                .map(|(sol, _)| sol)
                .collect();
            EngineRun {
                engine,
                candidates: union_of(circuit, &solutions),
                solutions,
                complete: cov.complete,
                stats: SolverStats::default(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::generate_failing_tests;
    use crate::validity::is_valid_correction;
    use gatediag_netlist::{c17, inject_errors, RandomCircuitSpec};

    fn workload() -> (Circuit, Vec<GateId>, TestSet) {
        // Scan seeds until the injected error is observable.
        for seed in 0..32u64 {
            let golden = RandomCircuitSpec::new(6, 3, 50).seed(seed).generate();
            let (faulty, sites) = inject_errors(&golden, 1, seed);
            let tests = generate_failing_tests(&golden, &faulty, 8, seed, 1 << 14);
            if !tests.is_empty() {
                return (faulty, sites.iter().map(|s| s.gate).collect(), tests);
            }
        }
        panic!("no seed yields an observable injection");
    }

    #[test]
    fn engine_parsing_round_trips() {
        for engine in EngineKind::ALL {
            assert_eq!(EngineKind::parse(engine.name()), Some(engine));
        }
        assert_eq!(EngineKind::parse("BSAT"), Some(EngineKind::Bsat));
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn every_engine_implicates_the_error_site() {
        let (faulty, errors, tests) = workload();
        for engine in EngineKind::ALL {
            let run = run_engine(engine, &faulty, &tests, &EngineConfig::default());
            assert_eq!(run.engine, engine);
            assert!(
                run.candidates.iter().any(|g| errors.contains(g)),
                "{engine}: error site not implicated"
            );
            // Candidates are sorted and deduplicated.
            assert!(run.candidates.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bsat_run_matches_direct_call() {
        let (faulty, _, tests) = workload();
        let config = EngineConfig::default();
        let run = run_engine(EngineKind::Bsat, &faulty, &tests, &config);
        let direct = basic_sat_diagnose(&faulty, &tests, config.k, BsatOptions::default());
        assert_eq!(run.solutions, direct.solutions);
        assert_eq!(run.complete, direct.complete);
        assert_eq!(run.stats, direct.stats);
    }

    #[test]
    fn auto_engine_reports_only_valid_corrections() {
        let (faulty, _, tests) = workload();
        let run = run_engine(EngineKind::Auto, &faulty, &tests, &EngineConfig::default());
        for sol in &run.solutions {
            assert!(
                is_valid_correction(&faulty, &tests, sol),
                "auto engine reported an invalid correction {sol:?}"
            );
        }
        // Auto solutions are exactly the valid subset of the COV covers.
        let cov = run_engine(EngineKind::Cov, &faulty, &tests, &EngineConfig::default());
        for sol in &run.solutions {
            assert!(cov.solutions.contains(sol));
        }
    }

    #[test]
    fn runs_are_worker_count_invariant() {
        let (faulty, _, tests) = workload();
        for engine in EngineKind::ALL {
            let sequential = run_engine(
                engine,
                &faulty,
                &tests,
                &EngineConfig {
                    parallelism: Parallelism::Sequential,
                    ..EngineConfig::default()
                },
            );
            for workers in [2usize, 8] {
                let parallel = run_engine(
                    engine,
                    &faulty,
                    &tests,
                    &EngineConfig {
                        parallelism: Parallelism::Fixed(workers),
                        ..EngineConfig::default()
                    },
                );
                assert_eq!(
                    sequential, parallel,
                    "{engine} drifted at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn truncation_clears_complete() {
        let golden = c17();
        let (faulty, _) = inject_errors(&golden, 1, 3);
        let tests = generate_failing_tests(&golden, &faulty, 8, 3, 4096);
        let run = run_engine(
            EngineKind::Bsat,
            &faulty,
            &tests,
            &EngineConfig {
                k: 2,
                max_solutions: 1,
                ..EngineConfig::default()
            },
        );
        assert_eq!(run.solutions.len(), 1);
        assert!(!run.complete);
    }
}
