//! A minimal, offline JSON layer shared by the campaign report reader
//! and the serve request/response protocol.
//!
//! The build is offline (no serde), so this module carries a small
//! self-contained JSON parser — full JSON syntax, numbers kept as raw
//! text so `u64` seeds survive without a round-trip through `f64` — plus
//! a deterministic compact renderer for single-line protocol messages.
//!
//! Hardening carried over from the campaign reader (which feeds
//! user-supplied `--resume` files, possibly half-written checkpoints,
//! straight into this parser):
//!
//! * a recursion-depth cap ([`MAX_DEPTH`]) so adversarially nested input
//!   returns a clean `Err` instead of overflowing the stack;
//! * duplicate object keys are rejected — a message carrying
//!   `{"seed": 1, "seed": 2}` is ambiguous, and silently picking one
//!   spelling would make the two protocol endpoints drift;
//! * malformed input of any shape (torn writes, bit flips, binary
//!   garbage) yields `Err`, never a panic — pinned by mutation proptests
//!   in `crates/campaign/tests/proptest_reader.rs`.

use std::fmt::Write as _;

/// Why a JSON document failed to parse or a value had the wrong shape.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Human-readable description, with a byte offset where applicable.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

// ---------------------------------------------------------------------
// A minimal JSON value tree.
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so integer widths
/// beyond `f64`'s 53-bit mantissa (e.g. `u64` seeds) are preserved.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (and [`Json::render`]
    /// emits fields in that order, so message layout is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Field lookup on an object; `None` on non-objects or missing keys.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Field lookup that errors (with `context`) when the key is absent.
    pub fn expect<'a>(&'a self, key: &str, context: &str) -> Result<&'a Json, JsonError> {
        self.get(key)
            .map_or_else(|| err(format!("{context}: missing field \"{key}\"")), Ok)
    }

    /// The string payload, or a typed error mentioning `context`.
    pub fn as_str(&self, context: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!(
                "{context}: expected string, got {}",
                other.type_name()
            )),
        }
    }

    /// The bool payload, or a typed error mentioning `context`.
    pub fn as_bool(&self, context: &str) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!(
                "{context}: expected bool, got {}",
                other.type_name()
            )),
        }
    }

    /// The array items, or a typed error mentioning `context`.
    pub fn as_arr(&self, context: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!(
                "{context}: expected array, got {}",
                other.type_name()
            )),
        }
    }

    /// The number as `u64` (exact — no `f64` round-trip).
    pub fn as_u64(&self, context: &str) -> Result<u64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|_| JsonError {
                message: format!("{context}: `{raw}` is not a u64"),
            }),
            other => err(format!(
                "{context}: expected number, got {}",
                other.type_name()
            )),
        }
    }

    /// The number as `usize`.
    pub fn as_usize(&self, context: &str) -> Result<usize, JsonError> {
        usize::try_from(self.as_u64(context)?).map_err(|_| JsonError {
            message: format!("{context}: value does not fit usize"),
        })
    }

    /// The number as `f64`; `null` decodes as NaN (the emitters write
    /// non-finite values as `null`).
    pub fn as_f64(&self, context: &str) -> Result<f64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|_| JsonError {
                message: format!("{context}: `{raw}` is not a number"),
            }),
            Json::Null => Ok(f64::NAN),
            other => err(format!(
                "{context}: expected number, got {}",
                other.type_name()
            )),
        }
    }

    /// `null` → `None`, number → `Some` — the optional-limit convention.
    pub fn as_opt_u64(&self, context: &str) -> Result<Option<u64>, JsonError> {
        match self {
            Json::Null => Ok(None),
            other => other.as_u64(context).map(Some),
        }
    }

    /// Renders the value as compact single-line JSON, `": "` after keys
    /// and `", "` between items (the same layout the campaign emitter
    /// uses), object fields in insertion order. Deterministic: equal
    /// trees render to equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => out.push_str(&escape_str(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape_str(key));
                    out.push_str(": ");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars),
/// quotes included — the same convention as the campaign emitter.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// The parser: recursive descent over bytes.
// ---------------------------------------------------------------------

/// Maximum container nesting the parser accepts. Campaign reports and
/// serve messages are a handful of levels deep; the cap exists so
/// adversarially nested input (ten thousand `[`s in a corrupted file)
/// returns a clean `Err` instead of overflowing the stack of the
/// recursive descent.
pub const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: &str) -> Result<T, JsonError> {
        err(format!("JSON parse error at byte {}: {message}", self.at))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, token: &str, what: &str) -> Result<(), JsonError> {
        if self.bytes[self.at..].starts_with(token.as_bytes()) {
            self.at += token.len();
            Ok(())
        } else {
            self.error(&format!("expected {what}"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null", "null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false", "false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => self.error(&format!("unexpected byte 0x{other:02x}")),
            None => self.error("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == digits_start {
            return self.error("digits expected");
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let frac_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == frac_start {
                return self.error("digits expected after decimal point");
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.at += 1;
            }
            let exp_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == exp_start {
                return self.error("digits expected in exponent");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(Json::Num(text))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.at += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.error("bad \\u escape");
                            };
                            // Surrogate pairs are not produced by the
                            // emitters (they only escape control chars);
                            // reject rather than mis-decode.
                            let Some(c) = char::from_u32(code) else {
                                return self.error("\\u escape is not a scalar value");
                            };
                            out.push(c);
                            self.at += 4;
                        }
                        _ => return self.error("bad escape"),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume the longest run up to the next quote or
                    // backslash in one step (multi-byte UTF-8 passes
                    // through unchanged; its bytes are all >= 0x80 so a
                    // byte-level scan cannot split a character). Large
                    // embedded payloads — a full `.bench` netlist in a
                    // serve request — make per-character validation of
                    // the remaining input quadratic.
                    let start = self.at;
                    while let Some(&b) = self.bytes.get(self.at) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.at += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|_| {
                        JsonError {
                            message: format!("invalid UTF-8 at byte {start}"),
                        }
                    })?;
                    out.push_str(run);
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.error("nesting too deep");
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.enter()?;
        self.at += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.error("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.enter()?;
        self.at += 1;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.error("expected object key");
            }
            let key = self.string()?;
            // A document carrying the same key twice in one object is
            // ambiguous (which spelling wins depends on the reader);
            // reject rather than silently pick one. None of our emitters
            // ever writes duplicate keys.
            if fields.iter().any(|(k, _)| *k == key) {
                return self.error(&format!("duplicate object key \"{key}\""));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.error("expected `:`");
            }
            self.at += 1;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.error("expected `,` or `}`"),
            }
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace content is
/// an error.
///
/// # Errors
///
/// Returns a [`JsonError`] (never panics) for malformed syntax, nesting
/// beyond [`MAX_DEPTH`], duplicate object keys, invalid UTF-8 inside
/// strings, or trailing content.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
        depth: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return parser.error("trailing content after the document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        parse_json(text).expect("valid JSON")
    }

    #[test]
    fn scalar_values_parse() {
        assert_eq!(parse("null"), Json::Null);
        assert_eq!(parse("true"), Json::Bool(true));
        assert_eq!(parse("false"), Json::Bool(false));
        assert_eq!(parse("42"), Json::Num("42".into()));
        assert_eq!(parse("-3.25e2"), Json::Num("-3.25e2".into()));
        assert_eq!(parse("\"hi\""), Json::Str("hi".into()));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let big = u64::MAX.to_string();
        assert_eq!(parse(&big).as_u64("seed").unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\\u000a\""),
            Json::Str("a\"b\\c\n\n".into())
        );
    }

    #[test]
    fn nested_containers_parse() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": null}}"#);
        assert_eq!(v.get("a").unwrap().as_arr("a").unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truthy", "1 2", "\"open"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let e = parse_json(r#"{"seed": 1, "seed": 2}"#).expect_err("dup key accepted");
        assert!(e.message.contains("duplicate object key"), "{e}");
        // Same key at different depths is fine.
        assert!(parse_json(r#"{"a": {"a": 1}}"#).is_ok());
    }

    #[test]
    fn nesting_depth_is_capped() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let e = parse_json(&deep).expect_err("over-deep input accepted");
        assert!(e.message.contains("nesting too deep"), "{e}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": "x\"y\\z"}, "e": true}"#;
        let v = parse(doc);
        assert_eq!(v.render(), doc);
        assert_eq!(parse(&v.render()), v);
    }

    #[test]
    fn render_escapes_control_chars() {
        assert_eq!(Json::Str("x\ny".into()).render(), "\"x\\u000ay\"");
        assert_eq!(escape_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
